// Portable fault-plan files: parse(to_text(p)) == p for every plan, malformed
// inputs fail with positional diagnostics, and an archived plan re-runs the
// experiment byte-identically — the artifact is the experiment.
#include "fault/plan_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "radio/profiles.h"
#include "trace/trace_io.h"
#include "workload/scenario.h"

namespace hsr::fault {
namespace {

FaultPlan every_builder_directive() {
  FaultPlan plan;
  plan.blackout(TimePoint::from_seconds(5.0), TimePoint::from_seconds(5.25));
  plan.kill_acks(TimePoint::from_seconds(10.0), TimePoint::from_seconds(10.1));
  plan.kill_ack_range(100, 105);
  plan.drop_retransmissions(2);
  plan.drop_segment_range(40, 44, 3);
  plan.delay_spike(TimePoint::from_seconds(20.0), TimePoint::from_seconds(21.0),
                   Duration::millis(250));
  plan.duplicate_next(5, /*copies=*/2);
  return plan;
}

TEST(FaultPlanIoTest, RoundTripPreservesEveryBuilderDirective) {
  const FaultPlan plan = every_builder_directive();
  const std::string text = plan.to_text();
  EXPECT_EQ(text.rfind("hsrfaultplan-v1 directives=7", 0), 0u) << text;

  auto parsed = FaultPlan::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), plan);
  // And the round trip is a fixed point: re-serialization is byte-identical.
  EXPECT_EQ(parsed.value().to_text(), text);
}

TEST(FaultPlanIoTest, UnboundedSentinelsSerializeAsStar) {
  FaultPlan plan;
  plan.directives.emplace_back();  // all-default directive: every bound open
  const std::string text = plan.to_text();
  EXPECT_NE(text.find("X * 0 * 0 * 0 * 0 1 fault"), std::string::npos) << text;
  auto parsed = FaultPlan::parse(text);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), plan);
}

TEST(FaultPlanIoTest, EmptyPlanRoundTrips) {
  const FaultPlan plan;
  auto parsed = FaultPlan::parse(plan.to_text());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(FaultPlanIoTest, WhitespaceLabelsAreSanitizedToOneToken) {
  FaultPlan plan;
  plan.blackout(TimePoint::zero(), TimePoint::from_seconds(1.0), "tunnel 3 entry");
  auto parsed = FaultPlan::parse(plan.to_text());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().directives.at(0).label, "tunnel_3_entry");
}

TEST(FaultPlanIoTest, MalformedInputsReportLineAndToken) {
  const struct {
    const char* text;
    const char* expect_in_message;
  } cases[] = {
      {"not-a-plan directives=0\n", "bad plan header"},
      {"hsrfaultplan-v1 directives=x\n", "bad directive count"},
      {"hsrfaultplan-v1 directives=1\nY * 0 * 0 * 0 * 0 1 l\n", "bad action code"},
      {"hsrfaultplan-v1 directives=1\nX Z 0 * 0 * 0 * 0 1 l\n", "bad kind filter"},
      {"hsrfaultplan-v1 directives=1\nX * zz * 0 * 0 * 0 1 l\n", "bad window begin"},
      {"hsrfaultplan-v1 directives=1\nX * 0 * 0 * 3 * 0 1 l\n",
       "bad retransmission flag"},
      {"hsrfaultplan-v1 directives=1\nX * 0 * 0 * 0 * -5 1 l\n", "bad delay"},
      {"hsrfaultplan-v1 directives=1\nX * 9 5 0 * 0 * 0 1 l\n", "inverted window"},
      {"hsrfaultplan-v1 directives=1\nX * 0 * 9 5 0 * 0 1 l\n",
       "inverted sequence range"},
      {"hsrfaultplan-v1 directives=1\nX * 0 *\n", "expected 11 fields"},
      // Header integrity: a truncated file must not pass as a smaller plan.
      {"hsrfaultplan-v1 directives=2\nX * 0 * 0 * 0 * 0 1 l\n",
       "header declares 2 directives, found 1"},
  };
  for (const auto& c : cases) {
    auto parsed = FaultPlan::parse(c.text);
    ASSERT_FALSE(parsed.is_ok()) << "accepted: " << c.text;
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find(c.expect_in_message),
              std::string::npos)
        << parsed.status().message();
  }
  // Positional diagnostics name the offending line and token.
  auto parsed = FaultPlan::parse(
      "hsrfaultplan-v1 directives=2\n"
      "X * 0 * 0 * 0 * 0 1 ok\n"
      "X * 0 * 0 * 0 bad! 0 1 broken\n");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("plan line 3"), std::string::npos)
      << parsed.status().message();
  EXPECT_NE(parsed.status().message().find("'bad!'"), std::string::npos)
      << parsed.status().message();
}

TEST(FaultPlanIoTest, FileSaveLoadRoundTripLeavesNoTempFile) {
  const std::string path = testing::TempDir() + "/hsr_plan_test.txt";
  std::remove(path.c_str());
  const FaultPlan plan = every_builder_directive();
  ASSERT_TRUE(save_fault_plan(path, plan).is_ok());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  auto loaded = load_fault_plan(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value(), plan);
  std::remove(path.c_str());
}

TEST(FaultPlanIoTest, MissingFileIsNotFound) {
  auto loaded = load_fault_plan("/nonexistent/dir/plan.txt");
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

// --- Re-run from plan file ----------------------------------------------------

std::string run_and_serialize(const FaultPlan& downlink, const FaultPlan& uplink) {
  workload::FlowRunConfig cfg;
  cfg.profile = radio::all_highspeed_profiles()[0];
  cfg.duration = Duration::seconds(15);
  cfg.seed = 20160627;
  cfg.downlink_faults = downlink;
  cfg.uplink_faults = uplink;
  const workload::FlowRunResult result = workload::run_flow(cfg);
  std::ostringstream os;
  trace::write_flow_capture(os, result.capture);
  return os.str();
}

TEST(FaultPlanIoTest, ReRunFromParsedPlanIsByteIdentical) {
  FaultPlan downlink;
  downlink.blackout(TimePoint::from_seconds(4.0), TimePoint::from_seconds(4.25));
  downlink.drop_retransmissions(2);
  FaultPlan uplink;
  uplink.kill_acks(TimePoint::from_seconds(8.0), TimePoint::from_seconds(8.2));

  const std::string original = run_and_serialize(downlink, uplink);

  // Re-run the experiment from the serialized plan text alone.
  auto down2 = FaultPlan::parse(downlink.to_text());
  auto up2 = FaultPlan::parse(uplink.to_text());
  ASSERT_TRUE(down2.is_ok() && up2.is_ok());
  const std::string rerun = run_and_serialize(down2.value(), up2.value());

  EXPECT_EQ(original, rerun);
  // The run actually exercised the scripted faults (the comparison is not
  // vacuously over two fault-free captures).
  EXPECT_NE(original.find(" X#"), std::string::npos);
}

// --- v2 parameter blocks ------------------------------------------------------

ReplayParams sample_params() {
  ReplayParams p;
  p.down_rate_bps = 2.5e6;
  p.down_delay_ns = Duration::millis(30).ns();
  p.down_queue = 128;
  p.up_rate_bps = 1e6;
  p.up_delay_ns = Duration::millis(25).ns();
  p.up_queue = 32;
  p.receiver_window = 100;
  p.tcp.mss_bytes = 1448;
  p.tcp.delayed_ack_b = 1;
  p.tcp.min_rto = Duration::millis(200);
  p.tcp.enable_sack = true;
  p.tcp.enable_frto = false;
  return p;
}

TEST(FaultPlanIoTest, NonDefaultProtocolKnobsRoundTripViaOptionalPair) {
  PlanFile file;
  file.plan.drop_retransmissions(1);
  ReplayParams p = sample_params();
  p.tcp.congestion_control = tcp::CongestionControl::kVeno;
  p.tcp.adaptive_delack = true;
  file.params = p;

  std::ostringstream os;
  write_plan_file(os, file);
  // The optional <cc> <adaptive> pair lands at the end of the P line.
  EXPECT_NE(os.str().find(" 2 1\n"), std::string::npos) << os.str();

  std::istringstream is(os.str());
  auto reread = read_plan_file(is);
  ASSERT_TRUE(reread.is_ok()) << reread.status().message();
  ASSERT_TRUE(reread.value().params.has_value());
  EXPECT_EQ(reread.value().params.value(), p);
}

TEST(FaultPlanIoTest, DefaultProtocolKnobsKeepTwelveFieldPLine) {
  PlanFile file;
  file.plan.drop_retransmissions(1);
  file.params = sample_params();  // Reno, non-adaptive: no optional pair

  std::ostringstream os;
  write_plan_file(os, file);
  std::istringstream count(os.str());
  std::string header;
  std::string pline;
  ASSERT_TRUE(std::getline(count, header));
  ASSERT_TRUE(std::getline(count, pline));
  std::istringstream ptokens(pline);
  std::string tok;
  int fields = 0;
  while (ptokens >> tok) ++fields;
  EXPECT_EQ(fields, 13);  // "P" + the 12 legacy fields, byte-compatible
}

TEST(FaultPlanIoTest, PlanFileWithParamsRoundTripsExactly) {
  PlanFile file;
  file.plan = every_builder_directive();
  file.params = sample_params();

  std::ostringstream os;
  write_plan_file(os, file);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("hsrfaultplan-v2 directives=7 params=1", 0), 0u) << text;

  std::istringstream is(text);
  auto reread = read_plan_file(is);
  ASSERT_TRUE(reread.is_ok()) << reread.status().message();
  EXPECT_EQ(reread.value().plan, file.plan);
  ASSERT_TRUE(reread.value().params.has_value());
  EXPECT_EQ(reread.value().params.value(), file.params.value());

  // Fixed point: re-serialization is byte-identical (rates round-trip via
  // shortest-decimal formatting).
  std::ostringstream os2;
  write_plan_file(os2, reread.value());
  EXPECT_EQ(os2.str(), text);
}

TEST(FaultPlanIoTest, ParamlessPlanFileStaysOnV1ByteForByte) {
  PlanFile file;
  file.plan = every_builder_directive();

  std::ostringstream os;
  write_plan_file(os, file);
  // No parameter block -> the legacy v1 writer's exact bytes, so existing
  // archives and golden files never change.
  std::ostringstream legacy;
  write_fault_plan(legacy, file.plan);
  EXPECT_EQ(os.str(), legacy.str());
  EXPECT_EQ(os.str().rfind("hsrfaultplan-v1 ", 0), 0u);
}

TEST(FaultPlanIoTest, LegacyReaderAcceptsV2DiscardingParams) {
  PlanFile file;
  file.plan = every_builder_directive();
  file.params = sample_params();
  std::ostringstream os;
  write_plan_file(os, file);

  std::istringstream is(os.str());
  auto plan = read_fault_plan(is);
  ASSERT_TRUE(plan.is_ok()) << plan.status().message();
  EXPECT_EQ(plan.value(), file.plan);
}

TEST(FaultPlanIoTest, MalformedParamsLinesReportLineAndToken) {
  const struct {
    const char* text;
    const char* expect;
  } cases[] = {
      {"hsrfaultplan-v2 directives=0 params=2\n", "bad params flag"},
      {"hsrfaultplan-v2 directives=0 params=1\n", "no P line followed"},
      {"hsrfaultplan-v2 directives=0 params=1\n"
       "P 0 0 64 1e6 0 64 1400 2 0 64 0 0\n",
       "bad downlink rate"},
      {"hsrfaultplan-v2 directives=0 params=1\n"
       "P 1e6 0 64 1e6 0 64 1400 2 0 64 7 0\n",
       "bad sack flag"},
      {"hsrfaultplan-v2 directives=0 params=1\n"
       "P 1e6 0 64\n",
       "expected P line"},
  };
  for (const auto& c : cases) {
    std::istringstream is(c.text);
    auto parsed = read_plan_file(is);
    ASSERT_FALSE(parsed.is_ok()) << c.text;
    EXPECT_NE(parsed.status().message().find(c.expect), std::string::npos)
        << parsed.status().message();
  }
}

TEST(FaultPlanIoTest, PlanFileSaveLoadRoundTrip) {
  PlanFile file;
  file.plan.drop_retransmissions(1);
  file.params = sample_params();
  const std::string path = "fault_plan_io_test_v2.plan";
  ASSERT_TRUE(save_plan_file(path, file).is_ok());
  auto loaded = load_plan_file(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().plan, file.plan);
  ASSERT_TRUE(loaded.value().params.has_value());
  EXPECT_EQ(loaded.value().params.value(), file.params.value());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());  // atomic save leaves no temp file
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hsr::fault
