// Scripted I/O faults: every outcome in the matrix (hard fail, transient
// EIO, ENOSPC byte budget, short write, torn rename) must fire exactly as
// scripted, be audited, round-trip through the plan text format — and, the
// point of it all, never corrupt a pre-existing file saved through any of
// the seam writers.
#include "fault/io_fault.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/corpus_stats.h"
#include "fault/fault.h"
#include "fault/plan_io.h"
#include "trace/capture.h"
#include "trace/trace_binary.h"
#include "trace/trace_io.h"
#include "util/fs.h"

namespace hsr::fault {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(IoFaultPlanTest, TextRoundTripCoversTheBuilderMatrix) {
  IoFaultPlan plan;
  plan.fail_nth_write(3, "chunk-", "nth-write")
      .enospc_after(4096, ".hsrb", "disk-full")
      .short_write(1, "", "half")
      .torn_rename("manifest", "tear")
      .transient(IoOp::kSync, 2, "corpus", "flaky-sync")
      .fail_next(IoOp::kMkdir, "work", "no-mkdir");
  const std::string text = plan.to_text();
  const auto parsed = IoFaultPlan::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), plan);
  EXPECT_EQ(parsed.value().to_text(), text);

  EXPECT_FALSE(IoFaultPlan::parse("hsriofaultplan-v9 directives=0\n").is_ok());
  EXPECT_FALSE(IoFaultPlan::parse("hsriofaultplan-v1 directives=1\n").is_ok());
}

TEST(IoFaultPlanTest, LoadReadsAPlanFileFromDisk) {
  const std::string path = "io_fault_test_plan.txt";
  IoFaultPlan plan;
  plan.enospc_after(8000, "chunk-", "enospc-smoke");
  ASSERT_TRUE(util::write_file_atomic(util::Fs::real(), path, plan.to_text()).is_ok());
  const auto loaded = IoFaultPlan::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value(), plan);
  std::remove(path.c_str());
  EXPECT_FALSE(IoFaultPlan::load("io_fault_test_missing.txt").is_ok());
}

TEST(IoFaultTest, FailNthWriteFiresOnExactlyTheNthMatch) {
  IoFaultPlan plan;
  plan.fail_nth_write(3, "target", "third");
  FaultInjectingFs fs(plan, util::Fs::real());

  const std::string path = "io_fault_test_target.txt";
  auto file = fs.open_for_write(path);
  ASSERT_TRUE(file.is_ok());
  EXPECT_TRUE(file.value()->append("one").is_ok());
  EXPECT_TRUE(file.value()->append("two").is_ok());
  const util::Status third = file.value()->append("three");
  EXPECT_EQ(third.code(), util::StatusCode::kInternal);
  EXPECT_NE(third.message().find("'third'"), std::string::npos) << third.to_string();
  // One trigger only: the next write passes again.
  EXPECT_TRUE(file.value()->append("four").is_ok());
  ASSERT_TRUE(file.value()->close().is_ok());
  EXPECT_EQ(fs.faults_triggered(), 1u);
  ASSERT_EQ(fs.audit().size(), 1u);
  EXPECT_EQ(fs.audit()[0].op, IoOp::kWrite);
  EXPECT_EQ(fs.audit()[0].label, "third");
  std::remove(path.c_str());
}

TEST(IoFaultTest, EnospcTripsOnceTheByteBudgetIsSpentAndStaysDown) {
  IoFaultPlan plan;
  plan.enospc_after(10, "", "full");
  FaultInjectingFs fs(plan, util::Fs::real());

  const std::string path = "io_fault_test_enospc.txt";
  auto file = fs.open_for_write(path);
  ASSERT_TRUE(file.is_ok());
  EXPECT_TRUE(file.value()->append("0123456789").is_ok());  // exactly the budget
  const util::Status full = file.value()->append("x");
  EXPECT_EQ(full.code(), util::StatusCode::kResourceExhausted);
  EXPECT_NE(full.message().find("ENOSPC"), std::string::npos) << full.to_string();
  // A full disk does not heal on retry.
  EXPECT_EQ(file.value()->append("x").code(), util::StatusCode::kResourceExhausted);
  (void)file.value()->close();
  std::remove(path.c_str());
}

TEST(IoFaultTest, TransientFailuresHealWithinTheRetryBudget) {
  IoFaultPlan plan;
  plan.transient(IoOp::kRename, 2, "heal", "flaky");
  FaultInjectingFs fs(plan, util::Fs::real());

  // write_file_atomic retries the whole attempt on kUnavailable, so two
  // scripted transients are absorbed and the save still lands.
  const std::string path = "io_fault_test_heal.txt";
  ASSERT_TRUE(util::write_file_atomic(fs, path, "durable").is_ok());
  EXPECT_EQ(read_file(path), "durable");
  EXPECT_EQ(fs.faults_triggered(), 2u);
  std::remove(path.c_str());
}

TEST(IoFaultTest, ShortWriteLeavesHalfTheBytesAndErrors) {
  IoFaultPlan plan;
  plan.short_write(1, "short", "half");
  FaultInjectingFs fs(plan, util::Fs::real());

  const std::string path = "io_fault_test_short.txt";
  auto file = fs.open_for_write(path);
  ASSERT_TRUE(file.is_ok());
  const util::Status st = file.value()->append("0123456789");
  EXPECT_EQ(st.code(), util::StatusCode::kInternal);
  (void)file.value()->close();
  // Half the buffer reached the file — the torn-state shape write_file_atomic
  // protects final paths from.
  EXPECT_EQ(read_file(path), "01234");
  std::remove(path.c_str());
}

// The heart of the crash-safety contract: whatever fault fires mid-save, a
// pre-existing file at the destination survives byte-identically, through
// EVERY seam writer (plan text, flow capture text + binary, corpus stats).
class SeamWriterSurvivalTest : public ::testing::TestWithParam<IoOutcome> {};

IoFaultPlan plan_for(IoOutcome outcome, const std::string& path) {
  IoFaultPlan plan;
  switch (outcome) {
    case IoOutcome::kFail:
      plan.fail_nth_write(1, path, "survival-fail");
      break;
    case IoOutcome::kTransient: {
      // More transients than the retry budget: the save must give up
      // without damaging the destination.
      plan.transient(IoOp::kWrite, util::kTransientRetryAttempts + 2, path,
                     "survival-transient");
      break;
    }
    case IoOutcome::kEnospc:
      plan.enospc_after(4, path, "survival-enospc");
      break;
    case IoOutcome::kShortWrite:
      plan.short_write(1, path, "survival-short");
      break;
    case IoOutcome::kTornRename:
      plan.torn_rename(path, "survival-torn");
      break;
  }
  return plan;
}

trace::FlowCapture survival_capture() {
  trace::FlowCapture cap;
  cap.flow = 5;
  trace::Packet p;
  p.id = 1;
  p.flow = 5;
  p.kind = net::PacketKind::kData;
  p.seq = 1;
  p.size_bytes = 1400;
  cap.data.on_send(p, trace::TimePoint::from_ns(1000));
  cap.data.on_deliver(p, trace::TimePoint::from_ns(1000),
                      trace::TimePoint::from_ns(21000));
  return cap;
}

TEST_P(SeamWriterSurvivalTest, PreexistingFilesSurviveEveryFailedSave) {
  util::Fs& real = util::Fs::real();
  const IoOutcome outcome = GetParam();

  const trace::FlowCapture capture = survival_capture();
  FaultPlan fault_plan;
  fault_plan.drop_retransmissions(2, "survival");
  analysis::CorpusStats stats;

  // Parameter instances run as concurrent ctest processes in one working
  // directory, so every path must be unique per outcome or the instances
  // clobber each other's "good save first" archives.
  const std::string tag = "io_fault_survival_" +
                          std::to_string(static_cast<int>(outcome)) + "_";
  struct Case {
    std::string path;
    std::function<util::Status(util::Fs&)> save;
  };
  const std::vector<Case> cases = {
      {tag + "capture.txt",
       [&](util::Fs& f) { return trace::save_flow_capture(f, tag + "capture.txt", capture); }},
      {tag + "capture.hsrb",
       [&](util::Fs& f) { return trace::save_flow_capture_binary(f, tag + "capture.hsrb", capture); }},
      {tag + "plan.txt",
       [&](util::Fs& f) { return save_fault_plan(f, tag + "plan.txt", fault_plan); }},
      {tag + "stats.txt",
       [&](util::Fs& f) { return analysis::save_corpus_stats(f, tag + "stats.txt", stats); }},
  };

  for (const Case& c : cases) {
    // A good save first — this is the archive a later faulty save must not eat.
    ASSERT_TRUE(c.save(real).is_ok()) << c.path;
    const std::string before = read_file(c.path);
    ASSERT_FALSE(before.empty()) << c.path;

    FaultInjectingFs faulty(plan_for(outcome, c.path), real);
    const util::Status st = c.save(faulty);
    EXPECT_FALSE(st.is_ok()) << c.path;
    EXPECT_GE(faulty.faults_triggered(), 1u) << c.path;
    EXPECT_EQ(read_file(c.path), before) << c.path;
    // No tmp debris either: failed saves clean up after themselves.
    EXPECT_FALSE(real.exists(c.path + ".tmp")) << c.path;
    std::remove(c.path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(AllOutcomes, SeamWriterSurvivalTest,
                         ::testing::Values(IoOutcome::kFail, IoOutcome::kTransient,
                                           IoOutcome::kEnospc, IoOutcome::kShortWrite,
                                           IoOutcome::kTornRename));

}  // namespace
}  // namespace hsr::fault
