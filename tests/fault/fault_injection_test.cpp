// Scripted fault injection: directive matching, decorator behaviour over an
// inner channel, audit trail, and the headline acceptance scenario — a
// FaultPlan that kills every ACK of one round forces a timeout the analysis
// layer classifies as SPURIOUS, deterministically.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/flow_analysis.h"
#include "net/channel.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "trace/capture.h"
#include "trace/trace_io.h"
#include "util/rng.h"

namespace hsr::fault {
namespace {

using net::Packet;
using net::PerfectChannel;
using util::Duration;
using util::TimePoint;

Packet data_packet(net::SeqNo seq, bool retx = false) {
  Packet p;
  p.id = seq;
  p.kind = net::PacketKind::kData;
  p.seq = seq;
  p.is_retransmission = retx;
  p.size_bytes = 1400;
  return p;
}

Packet ack_packet(net::SeqNo ack_next) {
  Packet p;
  p.id = 1000 + ack_next;
  p.kind = net::PacketKind::kAck;
  p.ack_next = ack_next;
  p.size_bytes = 52;
  return p;
}

// --- Directive matching -------------------------------------------------------

TEST(FaultDirectiveTest, KindFilterSelectsDataVsAck) {
  FaultDirective d;
  d.kind = FaultDirective::KindFilter::kAck;
  EXPECT_TRUE(d.matches(ack_packet(5), TimePoint::zero(), 0));
  EXPECT_FALSE(d.matches(data_packet(5), TimePoint::zero(), 0));
  d.kind = FaultDirective::KindFilter::kData;
  EXPECT_FALSE(d.matches(ack_packet(5), TimePoint::zero(), 0));
  EXPECT_TRUE(d.matches(data_packet(5), TimePoint::zero(), 0));
}

TEST(FaultDirectiveTest, TimeWindowIsHalfOpen) {
  FaultDirective d;
  d.window_begin = TimePoint::from_seconds(1);
  d.window_end = TimePoint::from_seconds(2);
  EXPECT_FALSE(d.matches(data_packet(1), TimePoint::from_seconds(0.999), 0));
  EXPECT_TRUE(d.matches(data_packet(1), TimePoint::from_seconds(1.0), 0));
  EXPECT_TRUE(d.matches(data_packet(1), TimePoint::from_seconds(1.999), 0));
  EXPECT_FALSE(d.matches(data_packet(1), TimePoint::from_seconds(2.0), 0));
}

TEST(FaultDirectiveTest, SeqRangeUsesAckNextForAcks) {
  FaultDirective d;
  d.seq_min = 2;
  d.seq_max = 7;
  EXPECT_TRUE(d.matches(ack_packet(2), TimePoint::zero(), 0));
  EXPECT_TRUE(d.matches(ack_packet(7), TimePoint::zero(), 0));
  EXPECT_FALSE(d.matches(ack_packet(8), TimePoint::zero(), 0));
  EXPECT_TRUE(d.matches(data_packet(4), TimePoint::zero(), 0));
  EXPECT_FALSE(d.matches(data_packet(1), TimePoint::zero(), 0));
}

TEST(FaultDirectiveTest, RetransmissionFlagAndTriggerBudget) {
  FaultDirective d;
  d.only_retransmissions = true;
  d.max_triggers = 2;
  EXPECT_FALSE(d.matches(data_packet(1, /*retx=*/false), TimePoint::zero(), 0));
  EXPECT_TRUE(d.matches(data_packet(1, /*retx=*/true), TimePoint::zero(), 0));
  EXPECT_TRUE(d.matches(data_packet(1, /*retx=*/true), TimePoint::zero(), 1));
  // Budget exhausted: the directive goes quiet.
  EXPECT_FALSE(d.matches(data_packet(1, /*retx=*/true), TimePoint::zero(), 2));
}

// --- Injector decorator -------------------------------------------------------

TEST(FaultInjectorTest, DropsMatchingPacketsAndAudits) {
  FaultPlan plan;
  plan.kill_ack_range(2, 3);
  FaultInjector inj(plan, std::make_unique<PerfectChannel>());
  std::vector<trace::FaultRecord> audit;
  inj.set_audit(&audit, 'A');

  const net::ChannelVerdict first = inj.decide(ack_packet(2), TimePoint::from_seconds(1));
  EXPECT_TRUE(first.dropped);
  EXPECT_EQ(first.cause, net::DropCause::scripted(0));
  EXPECT_TRUE(inj.decide(ack_packet(3), TimePoint::from_seconds(2)).dropped);
  EXPECT_FALSE(inj.decide(ack_packet(4), TimePoint::from_seconds(3)).dropped);
  EXPECT_FALSE(inj.decide(data_packet(2), TimePoint::from_seconds(4)).dropped);

  EXPECT_EQ(inj.faults_triggered(), 2u);
  EXPECT_EQ(inj.triggers(0), 2u);
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit[0].direction, 'A');
  EXPECT_EQ(audit[0].action, 'X');
  EXPECT_EQ(audit[0].seq, 2u);
  EXPECT_EQ(audit[0].label, "ack-round");
  EXPECT_EQ(audit[1].when, TimePoint::from_seconds(2));
}

TEST(FaultInjectorTest, DropBudgetStopsFiring) {
  FaultPlan plan;
  plan.drop_retransmissions(2);
  FaultInjector inj(plan, std::make_unique<PerfectChannel>());

  EXPECT_TRUE(inj.decide(data_packet(5, true), TimePoint::zero()).dropped);
  EXPECT_TRUE(inj.decide(data_packet(5, true), TimePoint::zero()).dropped);
  // Third retransmission is spared: max_triggers reached.
  EXPECT_FALSE(inj.decide(data_packet(5, true), TimePoint::zero()).dropped);
  EXPECT_EQ(inj.faults_triggered(), 2u);
}

TEST(FaultInjectorTest, DelaysAccumulateAcrossDirectives) {
  FaultPlan plan;
  plan.delay_spike(TimePoint::zero(), TimePoint::from_seconds(10), Duration::millis(40));
  plan.delay_spike(TimePoint::zero(), TimePoint::from_seconds(10), Duration::millis(60));
  FaultInjector inj(plan, std::make_unique<PerfectChannel>());
  std::vector<trace::FaultRecord> audit;
  inj.set_audit(&audit, 'D');

  EXPECT_EQ(inj.decide(data_packet(1), TimePoint::from_seconds(1)).extra_delay,
            Duration::millis(100));
  EXPECT_EQ(inj.decide(data_packet(2), TimePoint::from_seconds(20)).extra_delay,
            Duration::zero());
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit[0].action, 'L');
  EXPECT_EQ(audit[0].delay, Duration::millis(40));
}

TEST(FaultInjectorTest, DuplicatesCountTowardLinkStats) {
  sim::Simulator sim;
  FaultPlan plan;
  plan.duplicate_next(3, /*copies=*/1);

  net::LinkConfig cfg;
  cfg.rate_bps = 10e6;
  cfg.prop_delay = Duration::millis(5);
  net::Link link(sim, cfg,
                 std::make_unique<FaultInjector>(plan, std::make_unique<PerfectChannel>()));
  unsigned arrivals = 0;
  link.set_receiver([&arrivals](const Packet&) { ++arrivals; });

  for (net::SeqNo s = 1; s <= 5; ++s) link.send(data_packet(s));
  sim.run_until(TimePoint::from_seconds(1));

  // First three packets duplicated once each: 5 sends, 8 arrivals.
  EXPECT_EQ(link.stats().sent, 5u);
  EXPECT_EQ(link.stats().injected_duplicates, 3u);
  EXPECT_EQ(link.stats().delivered, 8u);
  EXPECT_EQ(arrivals, 8u);
}

TEST(FaultInjectorTest, SparedPacketsStillSeeInnerChannel) {
  // Inner channel drops everything; the plan only drops ACKs. Data packets
  // must still die by the inner channel's hand.
  FaultPlan plan;
  plan.kill_acks(TimePoint::zero(), TimePoint::max());
  auto always_drop = std::make_unique<net::FunctionalChannel>(
      [](const Packet&, TimePoint) { return 1.0; },
      [](const Packet&, TimePoint) { return Duration::zero(); }, util::Rng(1));
  FaultInjector inj(plan, std::move(always_drop));
  std::vector<trace::FaultRecord> audit;
  inj.set_audit(&audit, 'A');

  const net::ChannelVerdict organic = inj.decide(data_packet(1), TimePoint::zero());
  EXPECT_TRUE(organic.dropped);
  EXPECT_FALSE(organic.cause.is_scripted());  // inner cause passes through
  EXPECT_EQ(organic.cause.category, net::DropCategory::kFunctionalRadio);
  EXPECT_TRUE(audit.empty());  // organic loss, not a scripted fault
  const net::ChannelVerdict scripted = inj.decide(ack_packet(1), TimePoint::zero());
  EXPECT_TRUE(scripted.dropped);
  EXPECT_TRUE(scripted.cause.is_scripted());
  EXPECT_EQ(audit.size(), 1u);
}

// --- The paper's mechanism, scripted ------------------------------------------

tcp::ConnectionConfig small_round_config() {
  tcp::ConnectionConfig cfg;
  cfg.tcp.receiver_window = 6;
  cfg.tcp.delayed_ack_b = 1;
  cfg.tcp.initial_cwnd = 6.0;
  cfg.tcp.total_segments = 18;
  cfg.downlink.rate_bps = 10e6;
  cfg.downlink.prop_delay = Duration::millis(20);
  cfg.uplink.rate_bps = 10e6;
  cfg.uplink.prop_delay = Duration::millis(20);
  return cfg;
}

// Runs the scripted ACK-burst-kill scenario and returns the serialized
// capture (for determinism comparisons) plus the analysis.
struct SpuriousRun {
  std::string serialized;
  analysis::FlowAnalysis analysis;
  std::uint64_t faults = 0;
};

SpuriousRun run_scripted_spurious() {
  net::reset_packet_ids();  // byte-identical captures across repeat runs
  sim::Simulator sim;
  trace::FlowCapture capture;
  capture.flow = 1;

  // Perfect data path; kill every ACK in the first 100 ms — the whole first
  // round (ACKs arrive around t = 40 ms), but not the recovery ACK that
  // follows the RTO retransmission (RTO >= 200 ms).
  FaultPlan plan;
  plan.kill_acks(TimePoint::zero(), TimePoint::from_seconds(0.1));
  auto injector =
      std::make_unique<FaultInjector>(plan, std::make_unique<PerfectChannel>());
  injector->set_audit(&capture.faults, 'A');

  tcp::Connection conn(sim, 1, small_round_config(),
                       std::make_unique<PerfectChannel>(), std::move(injector));
  conn.set_downlink_tap(&capture.data);
  conn.set_uplink_tap(&capture.acks);
  conn.start();
  sim.run_until(TimePoint::from_seconds(6));

  SpuriousRun out;
  out.analysis = analysis::analyze_flow(capture);
  out.faults = capture.faults.size();
  std::ostringstream ss;
  trace::write_flow_capture(ss, capture);
  out.serialized = ss.str();
  return out;
}

TEST(ScriptedSpuriousTimeoutTest, AckBurstKillForcesSpuriousTimeout) {
  const SpuriousRun run = run_scripted_spurious();

  // Every ACK of the first round died by script (delayed_ack_b = 1 => one
  // ACK per data packet, 6 in the round).
  EXPECT_GE(run.faults, 6u);

  // The analysis layer, looking only at the capture, sees a timeout sequence
  // and classifies it spurious: the original copies reached the receiver.
  ASSERT_TRUE(run.analysis.has_timeouts());
  EXPECT_TRUE(run.analysis.timeout_sequences.front().spurious);
  EXPECT_DOUBLE_EQ(run.analysis.spurious_fraction, 1.0);
}

TEST(ScriptedSpuriousTimeoutTest, ByteIdenticalAcrossRuns) {
  const SpuriousRun a = run_scripted_spurious();
  const SpuriousRun b = run_scripted_spurious();
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.serialized, b.serialized);  // byte-for-byte, audit trail included
  EXPECT_NE(a.serialized.find("\nF A "), std::string::npos)
      << "audit records missing from the serialized capture";
}

TEST(ScriptedRecoveryStallTest, RetransmissionDropsPinQ) {
  // Lose segment 10's first copy, then the next two retransmissions: the
  // recovery stalls exactly as the paper's q parameter describes, and the
  // analysis measures a nonzero in-recovery retransmit loss rate.
  sim::Simulator sim;
  trace::FlowCapture capture;
  capture.flow = 1;

  FaultPlan plan;
  plan.drop_segment_range(10, 10, 1).drop_retransmissions(2);
  auto injector =
      std::make_unique<FaultInjector>(plan, std::make_unique<PerfectChannel>());
  injector->set_audit(&capture.faults, 'D');

  tcp::ConnectionConfig cfg = small_round_config();
  cfg.tcp.total_segments = UINT64_MAX;  // unbounded flow
  tcp::Connection conn(sim, 1, cfg, std::move(injector),
                       std::make_unique<PerfectChannel>());
  conn.set_downlink_tap(&capture.data);
  conn.set_uplink_tap(&capture.acks);
  conn.start();
  sim.run_until(TimePoint::from_seconds(20));

  EXPECT_EQ(capture.faults.size(), 3u);  // 1 first copy + 2 retransmissions
  const analysis::FlowAnalysis fa = analysis::analyze_flow(capture);
  ASSERT_TRUE(fa.has_timeouts());
  EXPECT_GT(fa.recovery_retx_loss_rate, 0.0);
  // The flow recovered once the script ran out of ammunition.
  EXPECT_GT(fa.unique_segments, 100u);
}

}  // namespace
}  // namespace hsr::fault
