// End-to-end pipeline tests: simulate -> capture -> serialize -> re-analyze
// -> model, verifying the pieces agree with each other and with the TCP
// stack's ground truth.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/flow_analysis.h"
#include "model/params.h"
#include "trace/trace_io.h"
#include "workload/scenario.h"

namespace hsr {
namespace {

workload::FlowRunResult run_unicom(double seconds, std::uint64_t seed) {
  workload::FlowRunConfig cfg;
  cfg.profile = radio::unicom_3g_highspeed();
  cfg.duration = util::Duration::from_seconds(seconds);
  cfg.seed = seed;
  return workload::run_flow(cfg);
}

TEST(PipelineTest, AnalysisAgreesWithGroundTruthEvents) {
  const auto run = run_unicom(60, 4242);
  const analysis::FlowAnalysis a = analysis::analyze_flow(run.capture);

  // Timeout count from the trace matches the stack's event log.
  unsigned analyzed = 0;
  for (const auto& ts : a.timeout_sequences) analyzed += ts.num_timeouts;
  EXPECT_EQ(analyzed, run.sender_stats.timeouts);

  // Fast retransmits agree within a small tolerance (boundary cases where
  // a dup-ack-triggered resend races a timer are inherently ambiguous in
  // any capture-based methodology).
  const double fr_truth = static_cast<double>(run.sender_stats.fast_retransmits);
  EXPECT_NEAR(static_cast<double>(a.fast_retransmits), fr_truth,
              std::max(2.0, 0.2 * fr_truth));

  // Goodput from the capture matches the receiver's unique-segment count.
  EXPECT_EQ(a.unique_segments, run.receiver_stats.unique_segments);
}

TEST(PipelineTest, SpuriousClassificationMatchesReceiverDuplicates) {
  const auto run = run_unicom(60, 99);
  const analysis::FlowAnalysis a = analysis::analyze_flow(run.capture);
  // Each spurious timeout implies the receiver saw a duplicate payload
  // (original + retransmission), so duplicates bound spurious sequences.
  unsigned spurious = 0;
  for (const auto& ts : a.timeout_sequences) {
    if (ts.spurious) ++spurious;
  }
  EXPECT_LE(spurious, run.receiver_stats.duplicate_segments);
}

TEST(PipelineTest, SerializationRoundTripPreservesAnalysis) {
  const auto run = run_unicom(30, 7);
  std::stringstream ss;
  trace::write_flow_capture(ss, run.capture);
  auto loaded = trace::read_flow_capture(ss);
  ASSERT_TRUE(loaded.is_ok());

  const analysis::FlowAnalysis before = analysis::analyze_flow(run.capture);
  const analysis::FlowAnalysis after = analysis::analyze_flow(loaded.value());
  EXPECT_EQ(before.unique_segments, after.unique_segments);
  EXPECT_EQ(before.timeout_sequences.size(), after.timeout_sequences.size());
  EXPECT_DOUBLE_EQ(before.data_loss_rate, after.data_loss_rate);
  EXPECT_DOUBLE_EQ(before.ack_loss_rate, after.ack_loss_rate);
  EXPECT_EQ(before.mean_rtt.ns(), after.mean_rtt.ns());
}

TEST(PipelineTest, ModelEvaluationProducesSaneDeviations) {
  const auto run = run_unicom(90, 2024);
  const analysis::FlowAnalysis a = analysis::analyze_flow(run.capture);
  model::EstimationOptions opt;
  opt.b = 2;
  opt.w_m = radio::unicom_3g_highspeed().receiver_window_segments;
  const model::FlowEvaluation ev = model::evaluate_flow(a, opt);
  EXPECT_GT(ev.trace_pps, 0.0);
  EXPECT_GT(ev.padhye_pps, 0.0);
  EXPECT_GT(ev.enhanced_pps, 0.0);
  // Deviations are finite fractions, not blowups.
  EXPECT_LT(ev.d_padhye, 3.0);
  EXPECT_LT(ev.d_enhanced, 3.0);
}

TEST(PipelineTest, RecoveryDurationsBracketGroundTruthGaps) {
  const auto run = run_unicom(60, 31337);
  const analysis::FlowAnalysis a = analysis::analyze_flow(run.capture);
  for (const auto& ts : a.timeout_sequences) {
    if (!ts.recovered_observed) continue;
    // Every recovery spans at least one RTO (>= the configured floor) and
    // less than the whole trace.
    EXPECT_GE(ts.duration().to_seconds(), 0.2);
    EXPECT_LT(ts.duration().to_seconds(), 60.0);
  }
}

}  // namespace
}  // namespace hsr
