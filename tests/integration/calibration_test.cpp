// Calibration tests: the synthetic corpus must land in (generous) bands
// around the paper's reported statistics, and the model comparison must
// reproduce the paper's SHAPE: the enhanced model strictly more accurate
// than the Padhye baseline, which overpredicts on HSR flows.
//
// Deterministic: fixed seeds, fixed spec. Bands are wide enough to survive
// legitimate code changes but tight enough to catch calibration regressions.
#include <gtest/gtest.h>

#include "model/params.h"
#include "util/stats.h"
#include "workload/dataset.h"

namespace hsr {
namespace {

const workload::DatasetResult& corpus() {
  static const workload::DatasetResult* ds = [] {
    workload::DatasetSpec spec = workload::DatasetSpec::paper_table1(0.12);
    spec.stationary_flows_per_provider = 4;
    return new workload::DatasetResult(workload::generate_dataset(spec));
  }();
  return *ds;
}

TEST(CalibrationTest, HeadlineStatisticsInPaperBands) {
  const auto h = corpus().corpus.headline();

  // Paper: 5.05 s high-speed vs 0.65 s stationary mean recovery.
  EXPECT_GT(h.mean_recovery_s_highspeed, 2.0);
  EXPECT_LT(h.mean_recovery_s_highspeed, 9.0);
  EXPECT_LT(h.mean_recovery_s_stationary, 2.0);
  EXPECT_GT(h.mean_recovery_s_highspeed, 2.0 * h.mean_recovery_s_stationary);

  // Paper: 49.24 % spurious timeouts.
  EXPECT_GT(h.spurious_timeout_share, 0.30);
  EXPECT_LT(h.spurious_timeout_share, 0.75);

  // Paper: ACK loss 0.661 % high-speed vs 0.0718 % stationary.
  EXPECT_GT(h.mean_ack_loss_highspeed, 0.003);
  EXPECT_LT(h.mean_ack_loss_highspeed, 0.020);
  EXPECT_LT(h.mean_ack_loss_stationary, 0.002);
  EXPECT_GT(h.mean_ack_loss_highspeed, 4.0 * h.mean_ack_loss_stationary);

  // Paper: data loss 0.7526 %; in-recovery retransmit loss 27.26 %.
  EXPECT_GT(h.mean_data_loss_highspeed, 0.004);
  EXPECT_LT(h.mean_data_loss_highspeed, 0.025);
  EXPECT_GT(h.mean_recovery_loss_highspeed, 0.15);
  EXPECT_LT(h.mean_recovery_loss_highspeed, 0.60);
  // q must dwarf the lifetime loss rate (the paper's central observation).
  EXPECT_GT(h.mean_recovery_loss_highspeed, 10.0 * h.mean_data_loss_highspeed);
}

TEST(CalibrationTest, AckLossPositivelyCorrelatesWithTimeouts) {
  // Fig. 4: positive correlation between per-flow ACK loss rate and the
  // probability that a loss indication is a timeout.
  const auto points = corpus().corpus.ack_loss_vs_timeout(true);
  ASSERT_GE(points.size(), 10u);
  std::vector<double> xs, ys;
  for (const auto& [x, y] : points) {
    xs.push_back(x);
    ys.push_back(y);
  }
  EXPECT_GT(util::pearson_correlation(xs, ys), 0.15);
}

TEST(CalibrationTest, EnhancedModelBeatsPadhyeBaseline) {
  util::RunningStats d_padhye, d_enhanced;
  unsigned padhye_over = 0, evaluated = 0;
  for (const auto& f : corpus().flows) {
    // Same usability thresholds as bench_fig10: a flow stuck in a coverage
    // gap has no steady state for either model.
    if (!f.high_speed || f.goodput_pps < 2.0 ||
        f.analysis.recovery_time_fraction > 0.5) {
      continue;
    }
    model::EstimationOptions opt;
    opt.b = f.delayed_ack_b;
    opt.w_m = f.receiver_window;
    const model::FlowEvaluation ev = model::evaluate_flow(f.analysis, opt);
    d_padhye.add(ev.d_padhye);
    d_enhanced.add(ev.d_enhanced);
    if (ev.padhye_pps > ev.trace_pps) ++padhye_over;
    ++evaluated;
  }
  ASSERT_GE(evaluated, 20u);

  // Paper Fig. 10 shape: Padhye mean D ~22 %, enhanced mean D ~5.7 %,
  // improvement ~16 pp. Bands are generous.
  EXPECT_GT(d_padhye.mean(), 0.10);
  EXPECT_LT(d_padhye.mean(), 0.50);
  EXPECT_LT(d_enhanced.mean(), d_padhye.mean());
  EXPECT_GT(d_padhye.mean() - d_enhanced.mean(), 0.05);
  // Padhye overpredicts on the bulk of HSR flows (it ignores spurious
  // timeouts and long recoveries).
  EXPECT_GT(static_cast<double>(padhye_over) / evaluated, 0.5);
}

TEST(CalibrationTest, ProviderGoodputOrdering) {
  // Mobile LTE > Unicom 3G > Telecom 3G, as in the paper's dataset.
  util::RunningStats mobile, unicom, telecom;
  for (const auto& f : corpus().flows) {
    if (!f.high_speed) continue;
    if (f.provider == "China Mobile") mobile.add(f.goodput_pps);
    if (f.provider == "China Unicom") unicom.add(f.goodput_pps);
    if (f.provider == "China Telecom") telecom.add(f.goodput_pps);
  }
  EXPECT_GT(mobile.mean(), unicom.mean());
  EXPECT_GT(unicom.mean(), telecom.mean());
}

TEST(CalibrationTest, RecoveryLossCdfDominatesLifetimeCdf) {
  // Fig. 3 shape: the in-recovery loss distribution sits far to the right
  // of the lifetime loss distribution.
  auto lifetime = corpus().corpus.lifetime_data_loss_cdf(true);
  auto recovery = corpus().corpus.recovery_loss_cdf(true);
  ASSERT_GT(lifetime.size(), 0u);
  ASSERT_GT(recovery.size(), 0u);
  EXPECT_GT(recovery.median(), 5.0 * lifetime.median());
}

TEST(CalibrationTest, AckLossCdfSeparatesMobilities) {
  // Fig. 6 shape: the high-speed ACK-loss CDF lies to the right of the
  // stationary one.
  auto hs = corpus().corpus.ack_loss_cdf(true);
  auto st = corpus().corpus.ack_loss_cdf(false);
  ASSERT_GT(hs.size(), 0u);
  ASSERT_GT(st.size(), 0u);
  EXPECT_GT(hs.median(), st.median());
  EXPECT_GT(hs.quantile(0.9), st.quantile(0.9));
}

}  // namespace
}  // namespace hsr
