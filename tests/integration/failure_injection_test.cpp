// Failure injection: drive the full connection through pathological channel
// conditions and verify the stack never wedges, never violates its
// invariants, and always resumes when conditions clear.
#include <gtest/gtest.h>

#include <memory>

#include "net/channel.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace hsr {
namespace {

using net::FunctionalChannel;
using net::Packet;
using net::PerfectChannel;
using util::Duration;
using util::Rng;
using util::TimePoint;

tcp::ConnectionConfig base_config() {
  tcp::ConnectionConfig cfg;
  cfg.tcp.receiver_window = 64;
  cfg.downlink.rate_bps = 10e6;
  cfg.downlink.prop_delay = Duration::millis(20);
  cfg.uplink.rate_bps = 10e6;
  cfg.uplink.prop_delay = Duration::millis(20);
  return cfg;
}

std::unique_ptr<FunctionalChannel> window_blackout(double from_s, double to_s) {
  return std::make_unique<FunctionalChannel>(
      [from_s, to_s](const Packet&, TimePoint now) {
        return (now >= TimePoint::from_seconds(from_s) &&
                now < TimePoint::from_seconds(to_s))
                   ? 1.0
                   : 0.0;
      },
      [](const Packet&, TimePoint) { return Duration::zero(); }, Rng(1));
}

TEST(FailureInjectionTest, SurvivesMinuteLongTotalBlackout) {
  // Both directions dead for a full minute: the sender must back off to the
  // 64T cap, stay alive, and resume afterwards.
  sim::Simulator sim;
  tcp::ConnectionConfig cfg = base_config();
  tcp::Connection conn(sim, 1, cfg, window_blackout(5, 65), window_blackout(5, 65));
  conn.start();
  sim.run_until(TimePoint::from_seconds(120));

  EXPECT_GE(conn.sender().stats().max_backoff_seen, 8u);
  EXPECT_LE(conn.sender().stats().max_backoff_seen, 64u);
  // The transfer resumed: far more delivered than the pre-blackout window.
  EXPECT_GT(conn.receiver().stats().unique_segments, 10000u);
  // Sequence invariant held throughout.
  EXPECT_LE(conn.sender().snd_una(), conn.sender().snd_next());
}

TEST(FailureInjectionTest, SurvivesRepeatedShortBlackouts) {
  // A blackout every 10 s: chronic interruption, no wedge.
  sim::Simulator sim;
  auto flicker = [] {
    return std::make_unique<FunctionalChannel>(
        [](const Packet&, TimePoint now) {
          const double t = now.to_seconds();
          return (t >= 5.0 && std::fmod(t, 10.0) < 1.5) ? 1.0 : 0.0;
        },
        [](const Packet&, TimePoint) { return Duration::zero(); }, Rng(1));
  };
  tcp::Connection conn(sim, 1, base_config(), flicker(), flicker());
  conn.start();
  sim.run_until(TimePoint::from_seconds(60));
  EXPECT_GE(conn.sender().stats().timeouts, 3u);
  EXPECT_GT(conn.receiver().stats().unique_segments, 5000u);
}

TEST(FailureInjectionTest, SurvivesHeavyRandomLossBothDirections) {
  sim::Simulator sim;
  tcp::ConnectionConfig cfg = base_config();
  tcp::Connection conn(sim, 1, cfg,
                       std::make_unique<net::BernoulliChannel>(0.15, Rng(3)),
                       std::make_unique<net::BernoulliChannel>(0.15, Rng(4)));
  conn.start();
  sim.run_until(TimePoint::from_seconds(60));
  // Brutal but not fatal: data still trickles through (liveness, not
  // throughput — 15 % bidirectional loss keeps Reno in near-constant
  // backoff).
  EXPECT_GT(conn.receiver().stats().unique_segments, 10u);
  EXPECT_GT(conn.sender().stats().timeouts, 0u);
}

TEST(FailureInjectionTest, SurvivesTinyQueue) {
  // A 2-packet DropTail queue forces constant overflow loss.
  sim::Simulator sim;
  tcp::ConnectionConfig cfg = base_config();
  cfg.downlink.queue_capacity = 2;
  tcp::Connection conn(sim, 1, cfg, std::make_unique<PerfectChannel>(),
                       std::make_unique<PerfectChannel>());
  conn.start();
  sim.run_until(TimePoint::from_seconds(30));
  EXPECT_GT(conn.downlink().stats().dropped_queue(), 0u);
  EXPECT_GT(conn.receiver().stats().unique_segments, 50u);
}

TEST(FailureInjectionTest, SurvivesExtremeDelayJitter) {
  // 0-500 ms of i.i.d. jitter: heavy reordering; cumulative ACKs must keep
  // the connection consistent (duplicates allowed, no deadlock).
  sim::Simulator sim;
  tcp::ConnectionConfig cfg = base_config();
  auto jittery = std::make_unique<net::JitterChannel>(
      std::make_unique<PerfectChannel>(), 0.100, 1.0, 0.5, Rng(5));
  tcp::Connection conn(sim, 1, cfg, std::move(jittery),
                       std::make_unique<PerfectChannel>());
  conn.start();
  sim.run_until(TimePoint::from_seconds(30));
  const auto& r = conn.receiver().stats();
  EXPECT_GT(r.unique_segments, 200u);
  // Reassembly never delivered a segment twice as unique.
  EXPECT_LE(r.unique_segments + r.duplicate_segments, r.segments_received);
  EXPECT_EQ(r.highest_contiguous, conn.receiver().rcv_next() - 1);
}

TEST(FailureInjectionTest, AsymmetricStarvationUplinkOnly) {
  // Uplink at 99 % loss for the whole run: almost no ACKs ever return, yet
  // the sender must not spin (bounded retransmissions via backoff).
  sim::Simulator sim;
  tcp::ConnectionConfig cfg = base_config();
  tcp::Connection conn(sim, 1, cfg, std::make_unique<PerfectChannel>(),
                       std::make_unique<net::BernoulliChannel>(0.99, Rng(6)));
  conn.start();
  sim.run_until(TimePoint::from_seconds(120));
  // Every RTO sends exactly one probe; with T >= 200 ms and doubling, 120 s
  // admits only a bounded number of transmissions.
  EXPECT_LT(conn.sender().stats().segments_sent, 2000u);
  EXPECT_GT(conn.sender().stats().timeouts, 5u);
}

TEST(FailureInjectionTest, FiniteTransferCompletesDespiteBlackout) {
  sim::Simulator sim;
  tcp::ConnectionConfig cfg = base_config();
  cfg.tcp.total_segments = 3000;
  tcp::Connection conn(sim, 1, cfg, window_blackout(2, 6), window_blackout(2, 6));
  conn.start();
  sim.run_until(TimePoint::from_seconds(60));
  EXPECT_TRUE(conn.sender().finished());
  EXPECT_EQ(conn.receiver().stats().highest_contiguous, 3000u);
}

TEST(FailureInjectionTest, MitigationsStackSurvivesChaos) {
  // All optional features on, under flicker + loss + jitter simultaneously.
  sim::Simulator sim;
  tcp::ConnectionConfig cfg = base_config();
  cfg.tcp.enable_frto = true;
  cfg.tcp.adaptive_delack = true;
  cfg.tcp.congestion_control = tcp::CongestionControl::kNewReno;
  std::vector<std::unique_ptr<net::ChannelModel>> down_parts, up_parts;
  down_parts.push_back(std::make_unique<net::BernoulliChannel>(0.03, Rng(7)));
  down_parts.push_back(std::make_unique<net::JitterChannel>(
      std::make_unique<PerfectChannel>(), 0.02, 0.8, 0.2, Rng(8)));
  up_parts.push_back(std::make_unique<net::BernoulliChannel>(0.05, Rng(9)));
  tcp::Connection conn(sim, 1, cfg,
                       std::make_unique<net::CompositeChannel>(std::move(down_parts)),
                       std::make_unique<net::CompositeChannel>(std::move(up_parts)));
  conn.start();
  sim.run_until(TimePoint::from_seconds(60));
  EXPECT_GT(conn.receiver().stats().unique_segments, 1000u);
  EXPECT_LE(conn.sender().snd_una(), conn.sender().snd_next());
}

}  // namespace
}  // namespace hsr
