#include "net/link.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace hsr::net {
namespace {

Packet data_packet(std::uint32_t size = 1000) {
  Packet p;
  p.id = allocate_packet_id();
  p.kind = PacketKind::kData;
  p.size_bytes = size;
  return p;
}

class RecordingTap : public LinkTap {
 public:
  struct Drop {
    std::uint64_t id;
    DropCause cause;
  };
  void on_send(const Packet& p, TimePoint) override { sends.push_back(p.id); }
  void on_drop(const Packet& p, TimePoint, const DropCause& c) override {
    drops.push_back({p.id, c});
  }
  void on_deliver(const Packet& p, TimePoint sent, TimePoint arrived) override {
    delivers.push_back(p.id);
    transits.push_back(arrived - sent);
  }
  std::vector<std::uint64_t> sends, delivers;
  std::vector<Drop> drops;
  std::vector<Duration> transits;
};

TEST(LinkTest, DeliversWithSerializationPlusPropagation) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;  // 1 byte per microsecond
  cfg.prop_delay = Duration::millis(10);
  Link link(sim, cfg, std::make_unique<PerfectChannel>());

  TimePoint arrival;
  link.set_receiver([&](const Packet&) { arrival = sim.now(); });
  link.send(data_packet(1000));  // 1ms serialization
  sim.run();
  EXPECT_EQ(arrival, TimePoint::zero() + Duration::millis(11));
  EXPECT_EQ(link.stats().sent, 1u);
  EXPECT_EQ(link.stats().delivered, 1u);
  EXPECT_EQ(link.stats().bytes_delivered, 1000u);
}

TEST(LinkTest, BackToBackPacketsQueueBehindEachOther) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.prop_delay = Duration::zero();
  Link link(sim, cfg, std::make_unique<PerfectChannel>());

  std::vector<TimePoint> arrivals;
  link.set_receiver([&](const Packet&) { arrivals.push_back(sim.now()); });
  link.send(data_packet(1000));  // finishes at 1ms
  link.send(data_packet(1000));  // finishes at 2ms
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], TimePoint::zero() + Duration::millis(1));
  EXPECT_EQ(arrivals[1], TimePoint::zero() + Duration::millis(2));
}

TEST(LinkTest, PreservesFifoOrderWithoutJitter) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate_bps = 1e6;
  cfg.queue_capacity = 100;
  Link link(sim, cfg, std::make_unique<PerfectChannel>());

  std::vector<std::uint64_t> seen;
  link.set_receiver([&](const Packet& p) { seen.push_back(p.seq); });
  for (std::uint64_t i = 1; i <= 20; ++i) {
    Packet p = data_packet();
    p.seq = i;
    link.send(std::move(p));
  }
  sim.run();
  ASSERT_EQ(seen.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(LinkTest, DropTailOnQueueOverflow) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate_bps = 8e3;  // 1ms per byte: long queue residence
  cfg.queue_capacity = 3;
  Link link(sim, cfg, std::make_unique<PerfectChannel>());
  RecordingTap tap;
  link.set_tap(&tap);
  link.set_receiver([](const Packet&) {});

  for (int i = 0; i < 5; ++i) link.send(data_packet(100));
  sim.run();
  EXPECT_EQ(link.stats().sent, 5u);
  EXPECT_EQ(link.stats().dropped_queue(), 2u);
  EXPECT_EQ(link.stats().delivered, 3u);
  ASSERT_EQ(tap.drops.size(), 2u);
  EXPECT_EQ(tap.drops[0].cause.category, DropCategory::kQueueOverflow);
  EXPECT_TRUE(tap.drops[0].cause.is_queue());
}

TEST(LinkTest, QueueDrainsOverTime) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.queue_capacity = 2;
  Link link(sim, cfg, std::make_unique<PerfectChannel>());
  link.set_receiver([](const Packet&) {});

  link.send(data_packet(1000));
  link.send(data_packet(1000));
  EXPECT_EQ(link.queue_depth(), 2u);
  sim.run();
  EXPECT_EQ(link.queue_depth(), 0u);
  // Capacity is available again.
  link.send(data_packet(1000));
  sim.run();
  EXPECT_EQ(link.stats().dropped_queue(), 0u);
  EXPECT_EQ(link.stats().delivered, 3u);
}

TEST(LinkTest, ChannelLossCountsAndReportsToTap) {
  sim::Simulator sim;
  LinkConfig cfg;
  Link link(sim, cfg, std::make_unique<BernoulliChannel>(1.0, util::Rng(1)));
  RecordingTap tap;
  link.set_tap(&tap);
  int received = 0;
  link.set_receiver([&](const Packet&) { ++received; });

  link.send(data_packet());
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(link.stats().dropped_channel(), 1u);
  EXPECT_EQ(link.stats().dropped_by(DropCategory::kBernoulli), 1u);
  ASSERT_EQ(tap.drops.size(), 1u);
  EXPECT_EQ(tap.drops[0].cause.category, DropCategory::kBernoulli);
  EXPECT_TRUE(tap.drops[0].cause.is_channel());
  EXPECT_DOUBLE_EQ(link.stats().loss_rate(), 1.0);
}

TEST(LinkTest, StatsLossRateMixed) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate_bps = 100e6;
  cfg.queue_capacity = 1000;
  Link link(sim, cfg, std::make_unique<BernoulliChannel>(0.2, util::Rng(33)));
  link.set_receiver([](const Packet&) {});
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    link.send(data_packet(100));
    sim.run();  // drain each time so the queue never overflows
  }
  EXPECT_EQ(link.stats().sent, static_cast<std::uint64_t>(n));
  EXPECT_NEAR(link.stats().loss_rate(), 0.2, 0.02);
  EXPECT_EQ(link.stats().dropped_queue(), 0u);
  EXPECT_EQ(link.stats().dropped_total(), link.stats().dropped_channel());
}

TEST(LinkTest, TapSeesEverySend) {
  sim::Simulator sim;
  Link link(sim, LinkConfig{}, std::make_unique<PerfectChannel>());
  RecordingTap tap;
  link.set_tap(&tap);
  link.set_receiver([](const Packet&) {});
  for (int i = 0; i < 7; ++i) link.send(data_packet());
  sim.run();
  EXPECT_EQ(tap.sends.size(), 7u);
  EXPECT_EQ(tap.delivers.size(), 7u);
}

TEST(LinkTest, StampsSentAt) {
  sim::Simulator sim;
  Link link(sim, LinkConfig{}, std::make_unique<PerfectChannel>());
  TimePoint stamped;
  link.set_receiver([&](const Packet& p) { stamped = p.sent_at; });
  sim.after(Duration::millis(5), [&] { link.send(data_packet()); });
  sim.run();
  EXPECT_EQ(stamped, TimePoint::zero() + Duration::millis(5));
}

// --- demuxed per-flow endpoints ----------------------------------------------

Packet flow_packet(FlowId flow, std::uint32_t size = 1000) {
  Packet p = data_packet(size);
  p.flow = flow;
  return p;
}

TEST(LinkEndpointTest, RoutesEachFlowToItsOwnReceiver) {
  sim::Simulator sim;
  Link link(sim, LinkConfig{}, std::make_unique<PerfectChannel>());
  std::vector<FlowId> to_one, to_two;
  link.register_endpoint(1, [&](const Packet& p) { to_one.push_back(p.flow); });
  link.register_endpoint(2, [&](const Packet& p) { to_two.push_back(p.flow); });
  EXPECT_TRUE(link.has_endpoint(1));
  EXPECT_FALSE(link.has_endpoint(3));
  EXPECT_EQ(link.endpoint_count(), 2u);

  link.send(flow_packet(1));
  link.send(flow_packet(2));
  link.send(flow_packet(1));
  sim.run();
  EXPECT_EQ(to_one, (std::vector<FlowId>{1, 1}));
  EXPECT_EQ(to_two, (std::vector<FlowId>{2}));
}

TEST(LinkEndpointTest, UnregisteredFlowsFallBackToAggregateReceiver) {
  sim::Simulator sim;
  Link link(sim, LinkConfig{}, std::make_unique<PerfectChannel>());
  std::vector<FlowId> endpoint_saw, fallback_saw;
  link.register_endpoint(1, [&](const Packet& p) { endpoint_saw.push_back(p.flow); });
  link.set_receiver([&](const Packet& p) { fallback_saw.push_back(p.flow); });

  link.send(flow_packet(1));
  link.send(flow_packet(9));  // nobody registered flow 9
  sim.run();
  EXPECT_EQ(endpoint_saw, (std::vector<FlowId>{1}));
  EXPECT_EQ(fallback_saw, (std::vector<FlowId>{9}));
}

TEST(LinkEndpointTest, SplitsStatsPerFlowAndSumsToAggregate) {
  sim::Simulator sim;
  Link link(sim, LinkConfig{}, std::make_unique<PerfectChannel>());
  link.register_endpoint(1, [](const Packet&) {});
  link.register_endpoint(2, [](const Packet&) {});

  link.send(flow_packet(1, 500));
  link.send(flow_packet(1, 500));
  link.send(flow_packet(2, 700));
  sim.run();
  EXPECT_EQ(link.endpoint_stats(1).sent, 2u);
  EXPECT_EQ(link.endpoint_stats(1).delivered, 2u);
  EXPECT_EQ(link.endpoint_stats(1).bytes_delivered, 1000u);
  EXPECT_EQ(link.endpoint_stats(2).sent, 1u);
  EXPECT_EQ(link.endpoint_stats(2).bytes_delivered, 700u);
  EXPECT_EQ(link.stats().sent,
            link.endpoint_stats(1).sent + link.endpoint_stats(2).sent);
  EXPECT_EQ(link.stats().delivered,
            link.endpoint_stats(1).delivered + link.endpoint_stats(2).delivered);
}

TEST(LinkEndpointTest, TwoFlowsShareOneFifoQueue) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;  // 1ms per 1000-byte packet
  cfg.prop_delay = Duration::zero();
  Link link(sim, cfg, std::make_unique<PerfectChannel>());
  std::vector<FlowId> order;
  link.register_endpoint(1, [&](const Packet& p) { order.push_back(p.flow); });
  link.register_endpoint(2, [&](const Packet& p) { order.push_back(p.flow); });

  // Interleaved arrivals serialize through the ONE transmitter in FIFO
  // order — flow 2's packet waits behind flow 1's, not on a private queue.
  link.send(flow_packet(1));
  link.send(flow_packet(2));
  link.send(flow_packet(1));
  link.send(flow_packet(2));
  sim.run();
  EXPECT_EQ(order, (std::vector<FlowId>{1, 2, 1, 2}));
}

TEST(LinkEndpointTest, QueueOverflowDropsAttributeToTheArrivingFlow) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate_bps = 8e3;  // slow: everything queues
  cfg.queue_capacity = 2;
  Link link(sim, cfg, std::make_unique<PerfectChannel>());
  RecordingTap tap1, tap2;
  link.register_endpoint(1, [](const Packet&) {}, &tap1);
  link.register_endpoint(2, [](const Packet&) {}, &tap2);

  // Flow 1 fills the shared queue; flow 2's arrivals are the ones tail-
  // dropped, and the drop lands in FLOW 2's stats and tap.
  link.send(flow_packet(1, 100));
  link.send(flow_packet(1, 100));
  link.send(flow_packet(2, 100));
  link.send(flow_packet(2, 100));
  sim.run();
  EXPECT_EQ(link.endpoint_stats(1).dropped_queue(), 0u);
  EXPECT_EQ(link.endpoint_stats(2).dropped_queue(), 2u);
  EXPECT_EQ(link.stats().dropped_queue(), 2u);
  EXPECT_TRUE(tap1.drops.empty());
  ASSERT_EQ(tap2.drops.size(), 2u);
  EXPECT_EQ(tap2.drops[0].cause.category, DropCategory::kQueueOverflow);
  EXPECT_EQ(link.endpoint_stats(1).delivered, 2u);
  EXPECT_EQ(link.endpoint_stats(2).delivered, 0u);
}

TEST(LinkEndpointTest, AggregateTapStillSeesEveryFlow) {
  sim::Simulator sim;
  Link link(sim, LinkConfig{}, std::make_unique<PerfectChannel>());
  RecordingTap aggregate, mine;
  link.set_tap(&aggregate);
  link.register_endpoint(1, [](const Packet&) {}, &mine);
  link.register_endpoint(2, [](const Packet&) {});

  link.send(flow_packet(1));
  link.send(flow_packet(2));
  sim.run();
  EXPECT_EQ(aggregate.sends.size(), 2u);
  EXPECT_EQ(aggregate.delivers.size(), 2u);
  EXPECT_EQ(mine.sends.size(), 1u);
  EXPECT_EQ(mine.delivers.size(), 1u);
}

TEST(LinkEndpointDeathTest, RejectsDuplicateAndUnknownFlows) {
  sim::Simulator sim;
  Link link(sim, LinkConfig{}, std::make_unique<PerfectChannel>());
  link.register_endpoint(1, [](const Packet&) {});
  EXPECT_DEATH(link.register_endpoint(1, [](const Packet&) {}),
               "already has an endpoint");
  EXPECT_DEATH(link.endpoint_stats(7), "unregistered flow");
}

TEST(LinkDeathTest, RejectsBadConfig) {
  sim::Simulator sim;
  LinkConfig zero_rate;
  zero_rate.rate_bps = 0.0;
  EXPECT_DEATH(Link(sim, zero_rate, std::make_unique<PerfectChannel>()), "rate");
  LinkConfig zero_queue;
  zero_queue.queue_capacity = 0;
  EXPECT_DEATH(Link(sim, zero_queue, std::make_unique<PerfectChannel>()), "queue");
}

}  // namespace
}  // namespace hsr::net
