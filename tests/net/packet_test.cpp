#include "net/packet.h"

#include <gtest/gtest.h>

namespace hsr::net {
namespace {

TEST(PacketTest, DescribeData) {
  Packet p;
  p.id = 7;
  p.flow = 3;
  p.kind = PacketKind::kData;
  p.seq = 11;
  const std::string s = p.describe();
  EXPECT_NE(s.find("DATA"), std::string::npos);
  EXPECT_NE(s.find("seq=11"), std::string::npos);
  EXPECT_NE(s.find("flow=3"), std::string::npos);
  EXPECT_EQ(s.find("retx"), std::string::npos);
}

TEST(PacketTest, DescribeRetransmission) {
  Packet p;
  p.kind = PacketKind::kData;
  p.seq = 4;
  p.is_retransmission = true;
  p.retx_count = 2;
  EXPECT_NE(p.describe().find("retx#2"), std::string::npos);
}

TEST(PacketTest, DescribeAck) {
  Packet p;
  p.kind = PacketKind::kAck;
  p.ack_next = 99;
  const std::string s = p.describe();
  EXPECT_NE(s.find("ACK"), std::string::npos);
  EXPECT_NE(s.find("ack_next=99"), std::string::npos);
}

TEST(PacketTest, AllocateIdsAreUniqueAndIncreasing) {
  const std::uint64_t a = allocate_packet_id();
  const std::uint64_t b = allocate_packet_id();
  const std::uint64_t c = allocate_packet_id();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(PacketTest, DefaultsAreSane) {
  Packet p;
  EXPECT_EQ(p.kind, PacketKind::kData);
  EXPECT_FALSE(p.is_retransmission);
  EXPECT_EQ(p.retx_count, 0u);
  EXPECT_EQ(p.subflow, 0);
  EXPECT_EQ(p.meta_seq, 0u);
}

}  // namespace
}  // namespace hsr::net
