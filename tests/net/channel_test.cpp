#include "net/channel.h"

#include <gtest/gtest.h>

#include <memory>

namespace hsr::net {
namespace {

Packet make_packet() {
  Packet p;
  p.id = allocate_packet_id();
  p.size_bytes = 1400;
  return p;
}

TEST(PerfectChannelTest, NeverDropsNeverDelays) {
  PerfectChannel ch;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ch.should_drop(make_packet(), TimePoint::from_seconds(i)));
    EXPECT_EQ(ch.extra_delay(make_packet(), TimePoint::from_seconds(i)), Duration::zero());
  }
}

TEST(BernoulliChannelTest, ZeroAndOne) {
  BernoulliChannel never(0.0, util::Rng(1));
  BernoulliChannel always(1.0, util::Rng(1));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(never.should_drop(make_packet(), TimePoint::zero()));
    EXPECT_TRUE(always.should_drop(make_packet(), TimePoint::zero()));
  }
}

TEST(BernoulliChannelTest, LossRateMatchesProbability) {
  const double p = 0.07;
  BernoulliChannel ch(p, util::Rng(42));
  int drops = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    if (ch.should_drop(make_packet(), TimePoint::zero())) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, p, 0.01);
}

TEST(BernoulliChannelDeathTest, RejectsOutOfRangeProbability) {
  EXPECT_DEATH(BernoulliChannel(-0.1, util::Rng(1)), "range");
  EXPECT_DEATH(BernoulliChannel(1.1, util::Rng(1)), "range");
}

TEST(GilbertElliottChannelTest, StationaryLossRateFormula) {
  GilbertElliottChannel::Config cfg;
  cfg.loss_good = 0.01;
  cfg.loss_bad = 0.5;
  cfg.mean_good_s = 9.0;
  cfg.mean_bad_s = 1.0;
  GilbertElliottChannel ch(cfg, util::Rng(1));
  EXPECT_NEAR(ch.stationary_loss_rate(), 0.9 * 0.01 + 0.1 * 0.5, 1e-12);
}

TEST(GilbertElliottChannelTest, EmpiricalRateNearStationary) {
  GilbertElliottChannel::Config cfg;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  cfg.mean_good_s = 2.0;
  cfg.mean_bad_s = 0.5;
  GilbertElliottChannel ch(cfg, util::Rng(7));
  int drops = 0;
  const int n = 200000;  // ~80 good/bad cycles: keeps the sample error small
  for (int i = 0; i < n; ++i) {
    // One packet per millisecond over 50 seconds of channel evolution.
    if (ch.should_drop(make_packet(), TimePoint::from_seconds(i * 0.001))) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, ch.stationary_loss_rate(), 0.06);
}

TEST(GilbertElliottChannelTest, LossesAreBursty) {
  // With loss_bad = 1 and loss_good = 0, consecutive drops cluster: the
  // conditional drop rate after a drop should far exceed the marginal rate.
  GilbertElliottChannel::Config cfg;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  cfg.mean_good_s = 5.0;
  cfg.mean_bad_s = 0.5;
  GilbertElliottChannel ch(cfg, util::Rng(3));
  int drops = 0, pairs = 0, drop_then_drop = 0;
  bool prev = false;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const bool d = ch.should_drop(make_packet(), TimePoint::from_seconds(i * 0.001));
    if (d) ++drops;
    if (prev) {
      ++pairs;
      if (d) ++drop_then_drop;
    }
    prev = d;
  }
  ASSERT_GT(drops, 100);
  ASSERT_GT(pairs, 100);
  const double marginal = static_cast<double>(drops) / n;
  const double conditional = static_cast<double>(drop_then_drop) / pairs;
  EXPECT_GT(conditional, 5.0 * marginal);
}

TEST(GilbertElliottChannelTest, InBadStateIsConsistentWithDrops) {
  GilbertElliottChannel::Config cfg;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  cfg.mean_good_s = 1.0;
  cfg.mean_bad_s = 1.0;
  GilbertElliottChannel ch(cfg, util::Rng(9));
  for (int i = 0; i < 5000; ++i) {
    const TimePoint t = TimePoint::from_seconds(i * 0.01);
    const bool bad = ch.in_bad_state(t);
    const bool dropped = ch.should_drop(make_packet(), t);
    if (!bad) {
      EXPECT_FALSE(dropped);
    }
  }
}

TEST(JitterChannelTest, AddsBoundedPositiveDelay) {
  JitterChannel ch(std::make_unique<PerfectChannel>(), 0.010, 0.5, 0.050,
                   util::Rng(5));
  for (int i = 0; i < 1000; ++i) {
    const Duration d = ch.extra_delay(make_packet(), TimePoint::zero());
    EXPECT_GT(d, Duration::zero());
    EXPECT_LE(d, Duration::millis(50));
  }
}

TEST(JitterChannelTest, DelegatesDropsToInner) {
  JitterChannel ch(std::make_unique<BernoulliChannel>(1.0, util::Rng(1)), 0.001,
                   0.1, 0.01, util::Rng(5));
  EXPECT_TRUE(ch.should_drop(make_packet(), TimePoint::zero()));
}

TEST(CompositeChannelTest, DropsIfAnyComponentDrops) {
  std::vector<std::unique_ptr<ChannelModel>> parts;
  parts.push_back(std::make_unique<BernoulliChannel>(0.0, util::Rng(1)));
  parts.push_back(std::make_unique<BernoulliChannel>(1.0, util::Rng(2)));
  CompositeChannel ch(std::move(parts));
  EXPECT_TRUE(ch.should_drop(make_packet(), TimePoint::zero()));
}

TEST(CompositeChannelTest, DelaysAddUp) {
  std::vector<std::unique_ptr<ChannelModel>> parts;
  parts.push_back(std::make_unique<JitterChannel>(
      std::make_unique<PerfectChannel>(), 0.010, 1e-9, 0.010, util::Rng(1)));
  parts.push_back(std::make_unique<JitterChannel>(
      std::make_unique<PerfectChannel>(), 0.010, 1e-9, 0.010, util::Rng(2)));
  CompositeChannel ch(std::move(parts));
  const Duration d = ch.extra_delay(make_packet(), TimePoint::zero());
  EXPECT_NEAR(d.to_seconds(), 0.020, 0.002);
}

TEST(FunctionalChannelTest, UsesProvidedCallables) {
  int drop_calls = 0;
  FunctionalChannel ch(
      [&](const Packet&, TimePoint) {
        ++drop_calls;
        return 1.0;
      },
      [](const Packet&, TimePoint) { return Duration::millis(7); }, util::Rng(1));
  EXPECT_TRUE(ch.should_drop(make_packet(), TimePoint::zero()));
  EXPECT_EQ(ch.extra_delay(make_packet(), TimePoint::zero()), Duration::millis(7));
  EXPECT_EQ(drop_calls, 1);
}

TEST(FunctionalChannelTest, TimeVaryingDropProbability) {
  // Probability 1 before t=1s, 0 after.
  FunctionalChannel ch(
      [](const Packet&, TimePoint now) {
        return now < TimePoint::from_seconds(1.0) ? 1.0 : 0.0;
      },
      [](const Packet&, TimePoint) { return Duration::zero(); }, util::Rng(1));
  EXPECT_TRUE(ch.should_drop(make_packet(), TimePoint::from_seconds(0.5)));
  EXPECT_FALSE(ch.should_drop(make_packet(), TimePoint::from_seconds(1.5)));
}

}  // namespace
}  // namespace hsr::net
