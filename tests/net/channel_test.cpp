#include "net/channel.h"

#include <gtest/gtest.h>

#include <memory>

namespace hsr::net {
namespace {

Packet make_packet() {
  Packet p;
  p.id = allocate_packet_id();
  p.size_bytes = 1400;
  return p;
}

TEST(PerfectChannelTest, NeverDropsNeverDelays) {
  PerfectChannel ch;
  for (int i = 0; i < 100; ++i) {
    const ChannelVerdict v = ch.decide(make_packet(), TimePoint::from_seconds(i));
    EXPECT_FALSE(v.dropped);
    EXPECT_EQ(v.extra_delay, Duration::zero());
    EXPECT_EQ(v.duplicate_copies, 0u);
  }
}

TEST(BernoulliChannelTest, ZeroAndOne) {
  BernoulliChannel never(0.0, util::Rng(1));
  BernoulliChannel always(1.0, util::Rng(1));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(never.decide(make_packet(), TimePoint::zero()).dropped);
    EXPECT_TRUE(always.decide(make_packet(), TimePoint::zero()).dropped);
  }
}

TEST(BernoulliChannelTest, DropsCarryBernoulliCause) {
  BernoulliChannel always(1.0, util::Rng(1));
  const ChannelVerdict v = always.decide(make_packet(), TimePoint::zero());
  ASSERT_TRUE(v.dropped);
  EXPECT_EQ(v.cause, DropCause::bernoulli());
  EXPECT_TRUE(v.cause.is_channel());
  EXPECT_FALSE(v.cause.is_queue());
  EXPECT_FALSE(v.cause.is_scripted());
}

TEST(BernoulliChannelTest, LossRateMatchesProbability) {
  const double p = 0.07;
  BernoulliChannel ch(p, util::Rng(42));
  int drops = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    if (ch.decide(make_packet(), TimePoint::zero()).dropped) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, p, 0.01);
}

TEST(BernoulliChannelDeathTest, RejectsOutOfRangeProbability) {
  EXPECT_DEATH(BernoulliChannel(-0.1, util::Rng(1)), "range");
  EXPECT_DEATH(BernoulliChannel(1.1, util::Rng(1)), "range");
}

TEST(GilbertElliottChannelTest, StationaryLossRateFormula) {
  GilbertElliottChannel::Config cfg;
  cfg.loss_good = 0.01;
  cfg.loss_bad = 0.5;
  cfg.mean_good_s = 9.0;
  cfg.mean_bad_s = 1.0;
  GilbertElliottChannel ch(cfg, util::Rng(1));
  EXPECT_NEAR(ch.stationary_loss_rate(), 0.9 * 0.01 + 0.1 * 0.5, 1e-12);
}

TEST(GilbertElliottChannelTest, EmpiricalRateNearStationary) {
  GilbertElliottChannel::Config cfg;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  cfg.mean_good_s = 2.0;
  cfg.mean_bad_s = 0.5;
  GilbertElliottChannel ch(cfg, util::Rng(7));
  int drops = 0;
  const int n = 200000;  // ~80 good/bad cycles: keeps the sample error small
  for (int i = 0; i < n; ++i) {
    // One packet per millisecond over 50 seconds of channel evolution.
    if (ch.decide(make_packet(), TimePoint::from_seconds(i * 0.001)).dropped) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, ch.stationary_loss_rate(), 0.06);
}

TEST(GilbertElliottChannelTest, LossesAreBursty) {
  // With loss_bad = 1 and loss_good = 0, consecutive drops cluster: the
  // conditional drop rate after a drop should far exceed the marginal rate.
  GilbertElliottChannel::Config cfg;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  cfg.mean_good_s = 5.0;
  cfg.mean_bad_s = 0.5;
  GilbertElliottChannel ch(cfg, util::Rng(3));
  int drops = 0, pairs = 0, drop_then_drop = 0;
  bool prev = false;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const bool d = ch.decide(make_packet(), TimePoint::from_seconds(i * 0.001)).dropped;
    if (d) ++drops;
    if (prev) {
      ++pairs;
      if (d) ++drop_then_drop;
    }
    prev = d;
  }
  ASSERT_GT(drops, 100);
  ASSERT_GT(pairs, 100);
  const double marginal = static_cast<double>(drops) / n;
  const double conditional = static_cast<double>(drop_then_drop) / pairs;
  EXPECT_GT(conditional, 5.0 * marginal);
}

TEST(GilbertElliottChannelTest, InBadStateIsConsistentWithDrops) {
  GilbertElliottChannel::Config cfg;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  cfg.mean_good_s = 1.0;
  cfg.mean_bad_s = 1.0;
  GilbertElliottChannel ch(cfg, util::Rng(9));
  for (int i = 0; i < 5000; ++i) {
    const TimePoint t = TimePoint::from_seconds(i * 0.01);
    const bool bad = ch.in_bad_state(t);
    const ChannelVerdict v = ch.decide(make_packet(), t);
    if (!bad) {
      EXPECT_FALSE(v.dropped);
    }
  }
}

TEST(GilbertElliottChannelTest, DropsAttributeTheStateTheyWereDrawnIn) {
  // loss_bad = 1, loss_good = 0: every drop must be attributed to the BAD
  // state, and the attribution must agree with in_bad_state at drop time.
  GilbertElliottChannel::Config cfg;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  cfg.mean_good_s = 1.0;
  cfg.mean_bad_s = 1.0;
  GilbertElliottChannel ch(cfg, util::Rng(11));
  int bad_drops = 0;
  for (int i = 0; i < 20000; ++i) {
    const TimePoint t = TimePoint::from_seconds(i * 0.001);
    const ChannelVerdict v = ch.decide(make_packet(), t);
    if (!v.dropped) continue;
    ++bad_drops;
    EXPECT_EQ(v.cause.category, DropCategory::kGilbertElliottBad);
    EXPECT_TRUE(ch.in_bad_state(t));
  }
  ASSERT_GT(bad_drops, 100);

  // And with loss in the GOOD state only, drops attribute to GOOD.
  cfg.loss_good = 1.0;
  cfg.loss_bad = 0.0;
  GilbertElliottChannel good_lossy(cfg, util::Rng(12));
  int good_drops = 0;
  for (int i = 0; i < 20000; ++i) {
    const ChannelVerdict v =
        good_lossy.decide(make_packet(), TimePoint::from_seconds(i * 0.001));
    if (!v.dropped) continue;
    ++good_drops;
    EXPECT_EQ(v.cause.category, DropCategory::kGilbertElliottGood);
  }
  ASSERT_GT(good_drops, 100);
}

TEST(JitterChannelTest, AddsBoundedPositiveDelay) {
  JitterChannel ch(std::make_unique<PerfectChannel>(), 0.010, 0.5, 0.050,
                   util::Rng(5));
  for (int i = 0; i < 1000; ++i) {
    const ChannelVerdict v = ch.decide(make_packet(), TimePoint::zero());
    ASSERT_FALSE(v.dropped);
    EXPECT_GT(v.extra_delay, Duration::zero());
    EXPECT_LE(v.extra_delay, Duration::millis(50));
  }
}

TEST(JitterChannelTest, DelegatesDropsToInner) {
  JitterChannel ch(std::make_unique<BernoulliChannel>(1.0, util::Rng(1)), 0.001,
                   0.1, 0.01, util::Rng(5));
  const ChannelVerdict v = ch.decide(make_packet(), TimePoint::zero());
  ASSERT_TRUE(v.dropped);
  // The inner channel's cause passes through untouched.
  EXPECT_EQ(v.cause, DropCause::bernoulli());
}

TEST(CompositeChannelTest, DropsIfAnyComponentDrops) {
  std::vector<std::unique_ptr<ChannelModel>> parts;
  parts.push_back(std::make_unique<BernoulliChannel>(0.0, util::Rng(1)));
  parts.push_back(std::make_unique<BernoulliChannel>(1.0, util::Rng(2)));
  CompositeChannel ch(std::move(parts));
  EXPECT_TRUE(ch.decide(make_packet(), TimePoint::zero()).dropped);
}

TEST(CompositeChannelTest, CausesCarryTheDroppingComponentIndex) {
  // Component 0 never drops; component 2 always does: every cause must name
  // component 2 and keep the component's own category.
  std::vector<std::unique_ptr<ChannelModel>> parts;
  parts.push_back(std::make_unique<BernoulliChannel>(0.0, util::Rng(1)));
  parts.push_back(std::make_unique<PerfectChannel>());
  parts.push_back(std::make_unique<BernoulliChannel>(1.0, util::Rng(2)));
  CompositeChannel ch(std::move(parts));
  const ChannelVerdict v = ch.decide(make_packet(), TimePoint::zero());
  ASSERT_TRUE(v.dropped);
  EXPECT_EQ(v.cause.category, DropCategory::kBernoulli);
  EXPECT_EQ(v.cause.component_path_string(), "2");
  // A drop never carries delay/duplication side effects.
  EXPECT_EQ(v.extra_delay, Duration::zero());
  EXPECT_EQ(v.duplicate_copies, 0u);
}

TEST(CompositeChannelTest, FirstDroppingComponentWinsAttribution) {
  std::vector<std::unique_ptr<ChannelModel>> parts;
  parts.push_back(std::make_unique<BernoulliChannel>(1.0, util::Rng(1)));
  parts.push_back(std::make_unique<BernoulliChannel>(1.0, util::Rng(2)));
  CompositeChannel ch(std::move(parts));
  const ChannelVerdict v = ch.decide(make_packet(), TimePoint::zero());
  ASSERT_TRUE(v.dropped);
  EXPECT_EQ(v.cause.component_path_string(), "0");
}

TEST(CompositeChannelTest, NestedCompositeReportsFullComponentPath) {
  // Path-aware attribution (channel.h): a depth-2 stack where the dropping
  // channel sits at OUTER index 1 / INNER index 0 must report the full
  // outermost-first path "1.0" — the innermost composite stamps its index
  // and the outer composite PREPENDS its own, so nested drops no longer
  // alias with a plain channel at index 0 (the old flat-index limitation).
  std::vector<std::unique_ptr<ChannelModel>> inner_parts;
  inner_parts.push_back(std::make_unique<BernoulliChannel>(1.0, util::Rng(1)));
  inner_parts.push_back(std::make_unique<PerfectChannel>());
  auto inner = std::make_unique<CompositeChannel>(std::move(inner_parts));

  std::vector<std::unique_ptr<ChannelModel>> outer_parts;
  outer_parts.push_back(std::make_unique<PerfectChannel>());
  outer_parts.push_back(std::move(inner));
  CompositeChannel outer(std::move(outer_parts));

  const ChannelVerdict v = outer.decide(make_packet(), TimePoint::zero());
  ASSERT_TRUE(v.dropped);
  EXPECT_EQ(v.cause.category, DropCategory::kBernoulli);
  // Outermost-first: outer position of the nested composite (1), then the
  // index inside it (0). The flat innermost view is still available.
  EXPECT_EQ(v.cause.component_path_string(), "1.0");
  EXPECT_EQ(v.cause.component_depth, 2);
  EXPECT_EQ(v.cause.innermost_component(), 0);
}

TEST(CompositeChannelTest, DelaysAddUp) {
  std::vector<std::unique_ptr<ChannelModel>> parts;
  parts.push_back(std::make_unique<JitterChannel>(
      std::make_unique<PerfectChannel>(), 0.010, 1e-9, 0.010, util::Rng(1)));
  parts.push_back(std::make_unique<JitterChannel>(
      std::make_unique<PerfectChannel>(), 0.010, 1e-9, 0.010, util::Rng(2)));
  CompositeChannel ch(std::move(parts));
  const ChannelVerdict v = ch.decide(make_packet(), TimePoint::zero());
  ASSERT_FALSE(v.dropped);
  EXPECT_NEAR(v.extra_delay.to_seconds(), 0.020, 0.002);
}

TEST(FunctionalChannelTest, UsesProvidedCallables) {
  int drop_calls = 0;
  FunctionalChannel ch(
      [&](const Packet&, TimePoint) {
        ++drop_calls;
        return 1.0;
      },
      [](const Packet&, TimePoint) { return Duration::millis(7); }, util::Rng(1));
  const ChannelVerdict dropped = ch.decide(make_packet(), TimePoint::zero());
  ASSERT_TRUE(dropped.dropped);
  EXPECT_EQ(dropped.cause, DropCause::functional_radio());
  EXPECT_EQ(drop_calls, 1);
}

TEST(FunctionalChannelTest, DeliveredPacketsCarryTheDelayFn) {
  FunctionalChannel ch(
      [](const Packet&, TimePoint) { return 0.0; },
      [](const Packet&, TimePoint) { return Duration::millis(7); }, util::Rng(1));
  const ChannelVerdict v = ch.decide(make_packet(), TimePoint::zero());
  ASSERT_FALSE(v.dropped);
  EXPECT_EQ(v.extra_delay, Duration::millis(7));
}

TEST(FunctionalChannelTest, TimeVaryingDropProbability) {
  // Probability 1 before t=1s, 0 after.
  FunctionalChannel ch(
      [](const Packet&, TimePoint now) {
        return now < TimePoint::from_seconds(1.0) ? 1.0 : 0.0;
      },
      [](const Packet&, TimePoint) { return Duration::zero(); }, util::Rng(1));
  EXPECT_TRUE(ch.decide(make_packet(), TimePoint::from_seconds(0.5)).dropped);
  EXPECT_FALSE(ch.decide(make_packet(), TimePoint::from_seconds(1.5)).dropped);
}

namespace {
Packet flow_packet(FlowId flow) {
  Packet p = make_packet();
  p.flow = flow;
  return p;
}
}  // namespace

TEST(FlowDemuxChannelTest, RoutesByFlowId) {
  FlowDemuxChannel demux;
  demux.add_flow(1, std::make_unique<BernoulliChannel>(1.0, util::Rng(1)));
  demux.add_flow(2, std::make_unique<PerfectChannel>());
  EXPECT_TRUE(demux.has_flow(1));
  EXPECT_FALSE(demux.has_flow(3));
  EXPECT_EQ(demux.flow_count(), 2u);

  EXPECT_TRUE(demux.decide(flow_packet(1), TimePoint::zero()).dropped);
  EXPECT_FALSE(demux.decide(flow_packet(2), TimePoint::zero()).dropped);
}

TEST(FlowDemuxChannelTest, VerdictsPassThroughUntouched) {
  // The demux must NOT wrap verdicts in a composite path: a single-flow
  // demux is bit-transparent (the run_flow N=1 byte-identity relies on it).
  FlowDemuxChannel demux;
  demux.add_flow(1, std::make_unique<BernoulliChannel>(1.0, util::Rng(7)));
  const ChannelVerdict v = demux.decide(flow_packet(1), TimePoint::zero());
  ASSERT_TRUE(v.dropped);
  EXPECT_EQ(v.cause.category, DropCategory::kBernoulli);
  EXPECT_FALSE(v.cause.has_component());
}

TEST(FlowDemuxChannelTest, UnroutedFlowsUseFallbackThenCleanDelivery) {
  FlowDemuxChannel with_fallback(
      std::make_unique<BernoulliChannel>(1.0, util::Rng(3)));
  with_fallback.add_flow(1, std::make_unique<PerfectChannel>());
  EXPECT_FALSE(with_fallback.decide(flow_packet(1), TimePoint::zero()).dropped);
  EXPECT_TRUE(with_fallback.decide(flow_packet(5), TimePoint::zero()).dropped);

  FlowDemuxChannel bare;
  bare.add_flow(1, std::make_unique<BernoulliChannel>(1.0, util::Rng(3)));
  const ChannelVerdict v = bare.decide(flow_packet(5), TimePoint::zero());
  EXPECT_FALSE(v.dropped);
  EXPECT_EQ(v.extra_delay, Duration::zero());
}

TEST(FlowDemuxChannelTest, EachFlowKeepsItsOwnChannelState) {
  // Two Bernoulli channels with the same seed stay in lockstep only if each
  // flow consumes its OWN randomness stream.
  FlowDemuxChannel demux;
  demux.add_flow(1, std::make_unique<BernoulliChannel>(0.5, util::Rng(11)));
  demux.add_flow(2, std::make_unique<BernoulliChannel>(0.5, util::Rng(11)));
  for (int i = 0; i < 64; ++i) {
    const bool a = demux.decide(flow_packet(1), TimePoint::zero()).dropped;
    const bool b = demux.decide(flow_packet(2), TimePoint::zero()).dropped;
    EXPECT_EQ(a, b) << "draw " << i;
  }
}

TEST(FlowDemuxChannelDeathTest, RejectsNullAndDuplicateRoutes) {
  FlowDemuxChannel demux;
  demux.add_flow(1, std::make_unique<PerfectChannel>());
  EXPECT_DEATH(demux.add_flow(1, std::make_unique<PerfectChannel>()), "flow");
  EXPECT_DEATH(demux.add_flow(2, nullptr), "channel");
}

TEST(DropCauseTest, CategoryNamesAreStable) {
  EXPECT_STREQ(drop_category_name(DropCategory::kQueueOverflow), "queue-overflow");
  EXPECT_STREQ(drop_category_name(DropCategory::kGilbertElliottBad),
               "gilbert-elliott-bad");
  EXPECT_STREQ(drop_category_name(DropCategory::kScriptedFault), "scripted-fault");
}

TEST(DropCauseTest, FactoriesAndPredicates) {
  EXPECT_TRUE(DropCause::queue_overflow().is_queue());
  EXPECT_FALSE(DropCause::queue_overflow().is_channel());
  EXPECT_TRUE(DropCause::scripted(3).is_scripted());
  EXPECT_EQ(DropCause::scripted(3).directive, 3);
  EXPECT_TRUE(DropCause::gilbert_elliott(true).is_channel());
  EXPECT_EQ(DropCause::gilbert_elliott(false).category,
            DropCategory::kGilbertElliottGood);
  EXPECT_FALSE(DropCause{}.is_channel());  // unknown is not a channel loss
}

}  // namespace
}  // namespace hsr::net
