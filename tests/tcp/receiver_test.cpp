#include "tcp/receiver.h"

#include <gtest/gtest.h>

#include <vector>

namespace hsr::tcp {
namespace {

class ReceiverFixture : public testing::Test {
 protected:
  TcpReceiver make_receiver(TcpConfig cfg) {
    return TcpReceiver(sim_, cfg, /*flow=*/1,
                       [this](net::Packet p) { acks_.push_back(std::move(p)); });
  }

  net::Packet data(SeqNo seq) {
    net::Packet p;
    p.id = net::allocate_packet_id();
    p.flow = 1;
    p.kind = net::PacketKind::kData;
    p.seq = seq;
    p.size_bytes = 1400;
    return p;
  }

  sim::Simulator sim_;
  std::vector<net::Packet> acks_;
};

TEST_F(ReceiverFixture, AcksEveryBSegments) {
  TcpConfig cfg;
  cfg.delayed_ack_b = 2;
  TcpReceiver rcv = make_receiver(cfg);
  rcv.on_data(data(1));
  EXPECT_TRUE(acks_.empty());  // waiting for the second segment
  rcv.on_data(data(2));
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(acks_[0].ack_next, 3u);
  EXPECT_EQ(acks_[0].kind, net::PacketKind::kAck);
}

TEST_F(ReceiverFixture, NoDelayWhenBIsOne) {
  TcpConfig cfg;
  cfg.delayed_ack_b = 1;
  TcpReceiver rcv = make_receiver(cfg);
  rcv.on_data(data(1));
  rcv.on_data(data(2));
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(acks_[0].ack_next, 2u);
  EXPECT_EQ(acks_[1].ack_next, 3u);
}

TEST_F(ReceiverFixture, DelackTimerFlushesLoneSegment) {
  TcpConfig cfg;
  cfg.delayed_ack_b = 2;
  cfg.delayed_ack_timeout = Duration::millis(100);
  TcpReceiver rcv = make_receiver(cfg);
  rcv.on_data(data(1));
  EXPECT_TRUE(acks_.empty());
  sim_.run_until(TimePoint::zero() + Duration::millis(150));
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(acks_[0].ack_next, 2u);
}

TEST_F(ReceiverFixture, OutOfOrderTriggersImmediateDuplicateAck) {
  TcpConfig cfg;
  cfg.delayed_ack_b = 2;
  TcpReceiver rcv = make_receiver(cfg);
  rcv.on_data(data(1));
  rcv.on_data(data(2));  // cumulative ACK 3
  acks_.clear();
  rcv.on_data(data(4));  // hole at 3
  rcv.on_data(data(5));
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(acks_[0].ack_next, 3u);  // duplicate ACKs for the hole
  EXPECT_EQ(acks_[1].ack_next, 3u);
}

TEST_F(ReceiverFixture, ReassemblyDrainsBufferedSegments) {
  TcpConfig cfg;
  cfg.delayed_ack_b = 1;
  TcpReceiver rcv = make_receiver(cfg);
  rcv.on_data(data(2));
  rcv.on_data(data(3));
  rcv.on_data(data(1));  // fills the hole; rcv_next jumps to 4
  EXPECT_EQ(rcv.rcv_next(), 4u);
  EXPECT_EQ(acks_.back().ack_next, 4u);
  EXPECT_EQ(rcv.stats().unique_segments, 3u);
}

TEST_F(ReceiverFixture, DuplicateBelowRcvNextCountsAndAcksImmediately) {
  TcpConfig cfg;
  cfg.delayed_ack_b = 1;
  TcpReceiver rcv = make_receiver(cfg);
  rcv.on_data(data(1));
  acks_.clear();
  rcv.on_data(data(1));  // spurious retransmission arrives
  EXPECT_EQ(rcv.stats().duplicate_segments, 1u);
  EXPECT_EQ(rcv.stats().unique_segments, 1u);
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(acks_[0].ack_next, 2u);
}

TEST_F(ReceiverFixture, DuplicateOfBufferedOutOfOrderSegment) {
  TcpConfig cfg;
  cfg.delayed_ack_b = 1;
  TcpReceiver rcv = make_receiver(cfg);
  rcv.on_data(data(5));  // buffered out of order
  rcv.on_data(data(5));  // duplicate of the buffered copy
  EXPECT_EQ(rcv.stats().duplicate_segments, 1u);
  EXPECT_EQ(rcv.stats().unique_segments, 1u);
}

TEST_F(ReceiverFixture, StatsTrackHighestContiguous) {
  TcpConfig cfg;
  cfg.delayed_ack_b = 1;
  TcpReceiver rcv = make_receiver(cfg);
  for (SeqNo s = 1; s <= 10; ++s) rcv.on_data(data(s));
  EXPECT_EQ(rcv.stats().highest_contiguous, 10u);
  EXPECT_EQ(rcv.stats().segments_received, 10u);
  EXPECT_EQ(rcv.stats().acks_sent, 10u);
}

TEST_F(ReceiverFixture, DeliveryTimesRecordedPerUniqueSegment) {
  TcpConfig cfg;
  cfg.delayed_ack_b = 1;
  TcpReceiver rcv = make_receiver(cfg);
  rcv.on_data(data(1));
  rcv.on_data(data(1));  // duplicate: no new delivery time
  rcv.on_data(data(2));
  EXPECT_EQ(rcv.delivery_times().size(), 2u);
}

TEST_F(ReceiverFixture, CumulativeAckAfterBDelayCoversBoth) {
  TcpConfig cfg;
  cfg.delayed_ack_b = 3;
  TcpReceiver rcv = make_receiver(cfg);
  rcv.on_data(data(1));
  rcv.on_data(data(2));
  EXPECT_TRUE(acks_.empty());
  rcv.on_data(data(3));
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(acks_[0].ack_next, 4u);
}

}  // namespace
}  // namespace hsr::tcp
