// Tests for the F-RTO spurious-timeout response (RFC 5682, SACK-less) and
// the adaptive delayed-ACK extension — the two §V-motivated mitigations.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/channel.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "util/rng.h"

namespace hsr::tcp {
namespace {

net::Packet ack(SeqNo ack_next) {
  net::Packet p;
  p.id = net::allocate_packet_id();
  p.kind = net::PacketKind::kAck;
  p.ack_next = ack_next;
  return p;
}

class FrtoFixture : public testing::Test {
 protected:
  TcpSender make_sender(bool frto, double cwnd = 6.0) {
    TcpConfig cfg;
    cfg.enable_frto = frto;
    cfg.initial_cwnd = cwnd;
    return TcpSender(sim_, cfg, 1,
                     [this](net::Packet p) { sent_.push_back(std::move(p)); });
  }

  sim::Simulator sim_;
  std::vector<net::Packet> sent_;
};

TEST_F(FrtoFixture, SpuriousRtoDetectedAndUndone) {
  TcpSender snd = make_sender(true);
  snd.start();  // 1..6 in flight
  const double pre_rto_cwnd = snd.cwnd();

  // Total ACK silence -> RTO. F-RTO retransmits snd_una but does NOT pull
  // snd_next back.
  sim_.run_until(util::TimePoint::from_seconds(1));
  EXPECT_EQ(snd.stats().timeouts, 1u);
  EXPECT_TRUE(snd.frto_probing());
  EXPECT_EQ(snd.snd_next(), 7u);

  // The receiver had everything: a cumulative ACK for the whole window.
  sent_.clear();
  snd.on_ack(ack(7));
  EXPECT_TRUE(snd.frto_probing());
  // Probe with NEW data (7, 8), not retransmissions.
  ASSERT_EQ(sent_.size(), 2u);
  EXPECT_EQ(sent_[0].seq, 7u);
  EXPECT_EQ(sent_[1].seq, 8u);
  EXPECT_FALSE(sent_[0].is_retransmission);

  // Second advancing ACK: spurious confirmed, congestion state restored.
  snd.on_ack(ack(9));
  EXPECT_FALSE(snd.frto_probing());
  EXPECT_EQ(snd.frto_spurious_detected(), 1u);
  EXPECT_NEAR(snd.cwnd(), pre_rto_cwnd, 1e-9);
  EXPECT_FALSE(snd.in_timeout_recovery());
  // Exactly one retransmission happened in total (the RTO probe of seq 1).
  EXPECT_EQ(snd.stats().retransmissions, 1u);
}

TEST_F(FrtoFixture, GenuineLossFallsBackToGoBackN) {
  TcpSender snd = make_sender(true);
  snd.start();  // 1..6; pretend 2..6 were lost, 1 arrived late via the retx
  sim_.run_until(util::TimePoint::from_seconds(1));  // RTO, retx of 1
  ASSERT_TRUE(snd.frto_probing());

  snd.on_ack(ack(2));  // retx of 1 delivered; window advances -> probe phase
  ASSERT_TRUE(snd.frto_probing());

  // A duplicate ACK (receiver still stuck at 2): the timeout was genuine.
  sent_.clear();
  snd.on_ack(ack(2));
  EXPECT_FALSE(snd.frto_probing());
  // The hole was retransmitted immediately and go-back-N resumed.
  ASSERT_FALSE(sent_.empty());
  EXPECT_EQ(sent_[0].seq, 2u);
  EXPECT_TRUE(sent_[0].is_retransmission);
  EXPECT_EQ(snd.snd_next(), 3u);
  EXPECT_EQ(snd.frto_spurious_detected(), 0u);
}

TEST_F(FrtoFixture, DisabledByDefaultKeepsClassicBehavior) {
  TcpSender snd = make_sender(false);
  snd.start();
  sim_.run_until(util::TimePoint::from_seconds(1));
  EXPECT_FALSE(snd.frto_probing());
  EXPECT_EQ(snd.snd_next(), 2u);  // classic go-back-N pullback
}

TEST_F(FrtoFixture, SecondTimeoutDisablesProbe) {
  TcpSender snd = make_sender(true, 1.0);
  snd.start();  // one segment, never acked
  // First RTO at 1 s arms the probe; second at 3 s (backoff) must fall back.
  sim_.run_until(util::TimePoint::from_seconds(3));
  EXPECT_EQ(snd.stats().timeouts, 2u);
  EXPECT_FALSE(snd.frto_probing());
  EXPECT_EQ(snd.snd_next(), 2u);
}

TEST_F(FrtoFixture, EndToEndFrtoRecoversWindowAfterShortAckBlackout) {
  // A short ACK blackout — long enough to starve the timer, short enough
  // that the post-RTO probe ACKs get through — with and without F-RTO: the
  // F-RTO flow detects the spurious timeout, restores its window, and
  // delivers at least as much data.
  struct Outcome {
    std::uint64_t unique = 0;
    std::uint64_t spurious_detected = 0;
  };
  auto run_variant = [](bool frto) {
    sim::Simulator sim;
    ConnectionConfig cfg;
    cfg.tcp.receiver_window = 64;
    cfg.tcp.enable_frto = frto;
    cfg.downlink.rate_bps = 10e6;
    cfg.downlink.prop_delay = util::Duration::millis(20);
    cfg.uplink.rate_bps = 10e6;
    cfg.uplink.prop_delay = util::Duration::millis(20);
    auto blackout = std::make_unique<net::FunctionalChannel>(
        [](const net::Packet&, util::TimePoint now) {
          return (now >= util::TimePoint::from_seconds(5.0) &&
                  now < util::TimePoint::from_seconds(5.2))
                     ? 1.0
                     : 0.0;
        },
        [](const net::Packet&, util::TimePoint) { return util::Duration::zero(); },
        util::Rng(1));
    Connection conn(sim, 1, cfg, std::make_unique<net::PerfectChannel>(),
                    std::move(blackout));
    conn.start();
    sim.run_until(util::TimePoint::from_seconds(20));
    return Outcome{conn.receiver().stats().unique_segments,
                   conn.sender().frto_spurious_detected()};
  };

  const Outcome classic = run_variant(false);
  const Outcome frto = run_variant(true);
  EXPECT_EQ(classic.spurious_detected, 0u);
  EXPECT_GE(frto.spurious_detected, 1u);
  EXPECT_GE(frto.unique, classic.unique);
}

class AdaptiveDelackFixture : public testing::Test {
 protected:
  TcpReceiver make_receiver(bool adaptive) {
    TcpConfig cfg;
    cfg.delayed_ack_b = 2;
    cfg.adaptive_delack = adaptive;
    cfg.quickack_segments = 4;
    return TcpReceiver(sim_, cfg, 1,
                       [this](net::Packet p) { acks_.push_back(std::move(p)); });
  }

  net::Packet data(SeqNo seq) {
    net::Packet p;
    p.id = net::allocate_packet_id();
    p.kind = net::PacketKind::kData;
    p.seq = seq;
    return p;
  }

  sim::Simulator sim_;
  std::vector<net::Packet> acks_;
};

TEST_F(AdaptiveDelackFixture, QuickAcksAfterReordering) {
  TcpReceiver rcv = make_receiver(true);
  rcv.on_data(data(1));
  rcv.on_data(data(2));  // normal delayed ACK pair
  acks_.clear();
  rcv.on_data(data(4));  // hole -> trigger quickack budget
  rcv.on_data(data(3));  // fills hole
  rcv.on_data(data(5));
  rcv.on_data(data(6));
  // Adaptive: every in-order arrival inside the budget is acked at once.
  EXPECT_EQ(acks_.size(), 4u);
}

TEST_F(AdaptiveDelackFixture, BudgetDrainsBackToBatching) {
  TcpReceiver rcv = make_receiver(true);
  rcv.on_data(data(2));  // out of order: arms a quick-ACK budget of 4
  // Segments 1, 3, 4, 5 each consume one unit of the budget (instant ACKs).
  rcv.on_data(data(1));
  for (SeqNo s = 3; s <= 5; ++s) rcv.on_data(data(s));
  acks_.clear();
  rcv.on_data(data(6));  // budget exhausted: back to b=2 batching
  EXPECT_TRUE(acks_.empty());
  rcv.on_data(data(7));
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(acks_[0].ack_next, 8u);
}

TEST_F(AdaptiveDelackFixture, NonAdaptiveDoesNotQuickAckAfterReordering) {
  TcpReceiver rcv = make_receiver(false);
  rcv.on_data(data(2));  // immediate dup ACK (standard), but no budget armed
  acks_.clear();
  rcv.on_data(data(1));  // fills the hole: only 1 in-order credit -> delayed
  EXPECT_TRUE(acks_.empty());
  rcv.on_data(data(3));  // completes the b=2 batch
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(acks_[0].ack_next, 4u);
}

}  // namespace
}  // namespace hsr::tcp
