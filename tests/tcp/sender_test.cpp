#include "tcp/sender.h"

#include <gtest/gtest.h>

#include <vector>

namespace hsr::tcp {
namespace {

class SenderFixture : public testing::Test {
 protected:
  TcpSender make_sender(TcpConfig cfg) {
    return TcpSender(sim_, cfg, /*flow=*/1,
                     [this](net::Packet p) { sent_.push_back(std::move(p)); });
  }

  // Delivers a cumulative ACK to the sender.
  static net::Packet ack(SeqNo ack_next) {
    net::Packet p;
    p.id = net::allocate_packet_id();
    p.flow = 1;
    p.kind = net::PacketKind::kAck;
    p.ack_next = ack_next;
    p.size_bytes = 52;
    return p;
  }

  std::vector<SeqNo> sent_seqs() const {
    std::vector<SeqNo> out;
    for (const auto& p : sent_) out.push_back(p.seq);
    return out;
  }

  sim::Simulator sim_;
  std::vector<net::Packet> sent_;
};

TEST_F(SenderFixture, InitialWindowLimitsFirstBurst) {
  TcpConfig cfg;
  cfg.initial_cwnd = 2.0;
  TcpSender snd = make_sender(cfg);
  snd.start();
  EXPECT_EQ(sent_seqs(), (std::vector<SeqNo>{1, 2}));
}

TEST_F(SenderFixture, SlowStartDoublesPerRound) {
  TcpConfig cfg;
  cfg.initial_cwnd = 2.0;
  TcpSender snd = make_sender(cfg);
  snd.start();
  sent_.clear();
  snd.on_ack(ack(3));  // both segments acked: cwnd 2 -> 4
  EXPECT_NEAR(snd.cwnd(), 4.0, 1e-9);
  // Window 4, nothing in flight: sends 3,4,5,6.
  EXPECT_EQ(sent_seqs(), (std::vector<SeqNo>{3, 4, 5, 6}));
}

TEST_F(SenderFixture, CongestionAvoidanceGrowsByInverseCwnd) {
  TcpConfig cfg;
  cfg.initial_cwnd = 10.0;
  cfg.initial_ssthresh = 10.0;  // start directly in CA
  TcpSender snd = make_sender(cfg);
  snd.start();
  const double before = snd.cwnd();
  snd.on_ack(ack(3));
  EXPECT_NEAR(snd.cwnd(), before + 1.0 / before, 1e-9);
}

TEST_F(SenderFixture, CwndCappedAtReceiverWindow) {
  TcpConfig cfg;
  cfg.initial_cwnd = 2.0;
  cfg.receiver_window = 4;
  TcpSender snd = make_sender(cfg);
  snd.start();
  snd.on_ack(ack(3));
  snd.on_ack(ack(5));
  snd.on_ack(ack(9));
  EXPECT_LE(snd.cwnd(), 4.0);
  EXPECT_LE(snd.snd_next() - snd.snd_una(), 4u);
}

TEST_F(SenderFixture, ThreeDupAcksTriggerFastRetransmit) {
  TcpConfig cfg;
  cfg.initial_cwnd = 8.0;
  TcpSender snd = make_sender(cfg);
  snd.start();  // sends 1..8
  sent_.clear();
  snd.on_ack(ack(2));  // seq 1 acked; assume 2 lost
  snd.on_ack(ack(2));
  snd.on_ack(ack(2));  // dupack #2
  EXPECT_EQ(snd.stats().fast_retransmits, 0u);
  snd.on_ack(ack(2));  // dupack #3 -> fast retransmit of 2
  EXPECT_EQ(snd.stats().fast_retransmits, 1u);
  EXPECT_TRUE(snd.in_fast_recovery());
  ASSERT_FALSE(sent_.empty());
  // The retransmission of 2 happened and is marked as such.
  bool saw_retx = false;
  for (const auto& p : sent_) {
    if (p.seq == 2 && p.is_retransmission) saw_retx = true;
  }
  EXPECT_TRUE(saw_retx);
}

TEST_F(SenderFixture, FastRecoveryExitsOnNewAck) {
  TcpConfig cfg;
  cfg.initial_cwnd = 8.0;
  TcpSender snd = make_sender(cfg);
  snd.start();
  snd.on_ack(ack(2));
  for (int i = 0; i < 3; ++i) snd.on_ack(ack(2));
  ASSERT_TRUE(snd.in_fast_recovery());
  const double ssthresh = snd.ssthresh();
  snd.on_ack(ack(9));  // recovery ACK
  EXPECT_FALSE(snd.in_fast_recovery());
  EXPECT_NEAR(snd.cwnd(), ssthresh + 1.0 / ssthresh, 1e-6);
}

TEST_F(SenderFixture, DupAckInflationDuringRecovery) {
  TcpConfig cfg;
  cfg.initial_cwnd = 8.0;
  TcpSender snd = make_sender(cfg);
  snd.start();
  snd.on_ack(ack(2));
  for (int i = 0; i < 3; ++i) snd.on_ack(ack(2));
  const double during = snd.cwnd();
  snd.on_ack(ack(2));  // 4th dupack inflates
  EXPECT_NEAR(snd.cwnd(), during + 1.0, 1e-9);
}

TEST_F(SenderFixture, RtoRetransmitsOldestAndBacksOff) {
  TcpConfig cfg;
  cfg.initial_cwnd = 4.0;
  TcpSender snd = make_sender(cfg);
  snd.start();  // sends 1..4; RTO armed (initial 1s)
  sent_.clear();
  sim_.run_until(TimePoint::zero() + Duration::seconds(1));
  EXPECT_EQ(snd.stats().timeouts, 1u);
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_EQ(sent_[0].seq, 1u);
  EXPECT_TRUE(sent_[0].is_retransmission);
  EXPECT_NEAR(snd.cwnd(), 1.0, 1e-9);
  EXPECT_TRUE(snd.in_timeout_recovery());
  EXPECT_EQ(snd.rto_estimator().backoff_multiplier(), 2u);
  // snd_next pulled back to snd_una + 1 (go-back-N).
  EXPECT_EQ(snd.snd_next(), 2u);
}

TEST_F(SenderFixture, ConsecutiveTimeoutsDoubleTheTimer) {
  TcpConfig cfg;
  cfg.initial_cwnd = 1.0;
  TcpSender snd = make_sender(cfg);
  snd.start();
  // First RTO at t=1s, second at 1+2=3s, third at 3+4=7s (initial RTO 1s).
  sim_.run_until(TimePoint::zero() + Duration::seconds(7));
  EXPECT_EQ(snd.stats().timeouts, 3u);
  EXPECT_EQ(snd.rto_estimator().backoff_multiplier(), 8u);
  EXPECT_EQ(snd.stats().retransmissions, 3u);
  std::vector<SeqNo> seqs = sent_seqs();
  // Only segment 1, retransmitted repeatedly.
  for (SeqNo s : seqs) EXPECT_EQ(s, 1u);
}

TEST_F(SenderFixture, RecoveryExitResetsBackoffAndEntersSlowStart) {
  TcpConfig cfg;
  cfg.initial_cwnd = 4.0;
  TcpSender snd = make_sender(cfg);
  snd.start();
  sim_.run_until(TimePoint::zero() + Duration::seconds(1));  // RTO
  ASSERT_TRUE(snd.in_timeout_recovery());
  snd.on_ack(ack(2));
  EXPECT_FALSE(snd.in_timeout_recovery());
  EXPECT_EQ(snd.rto_estimator().backoff_multiplier(), 1u);
  // Slow start from 1: cwnd grew by the newly acked amount.
  EXPECT_NEAR(snd.cwnd(), 2.0, 1e-9);
  // Events logged: timeout, recovery exit, slow start.
  bool saw_to = false, saw_exit = false, saw_ss = false;
  for (const auto& e : snd.events()) {
    saw_to |= e.type == SenderEventType::kTimeout;
    saw_exit |= e.type == SenderEventType::kRecoveryExit;
    saw_ss |= e.type == SenderEventType::kSlowStartEntered;
  }
  EXPECT_TRUE(saw_to && saw_exit && saw_ss);
}

TEST_F(SenderFixture, SpuriousTimeoutAckJumpAdvancesPastResendPointer) {
  TcpConfig cfg;
  cfg.initial_cwnd = 4.0;
  TcpSender snd = make_sender(cfg);
  snd.start();  // 1..4 in flight
  sim_.run_until(TimePoint::zero() + Duration::seconds(1));  // RTO, resend 1
  // The receiver actually had everything: cumulative ACK jumps to 5.
  snd.on_ack(ack(5));
  EXPECT_EQ(snd.snd_una(), 5u);
  EXPECT_GE(snd.snd_next(), 5u);
  // New data flows again.
  sent_.clear();
  snd.on_ack(ack(5));  // no-op duplicate while nothing outstanding
  EXPECT_FALSE(snd.in_timeout_recovery());
}

TEST_F(SenderFixture, KarnNoRttSampleFromRetransmittedSegment) {
  TcpConfig cfg;
  cfg.initial_cwnd = 1.0;
  TcpSender snd = make_sender(cfg);
  snd.start();
  sim_.run_until(TimePoint::zero() + Duration::seconds(1));  // RTO, retx of 1
  EXPECT_EQ(snd.stats().timeouts, 1u);
  snd.on_ack(ack(2));  // acks the retransmitted segment
  // Karn: ambiguous sample discarded; estimator still has no sample.
  EXPECT_FALSE(snd.rto_estimator().has_sample());
}

TEST_F(SenderFixture, RttSampleTakenFromCleanSegment) {
  TcpConfig cfg;
  cfg.initial_cwnd = 2.0;
  TcpSender snd = make_sender(cfg);
  snd.start();
  sim_.after(Duration::millis(80), [&] { snd.on_ack(ack(3)); });
  sim_.run_until(TimePoint::zero() + Duration::millis(100));
  ASSERT_TRUE(snd.rto_estimator().has_sample());
  EXPECT_EQ(snd.rto_estimator().srtt(), Duration::millis(80));
}

TEST_F(SenderFixture, FiniteBacklogFinishes) {
  TcpConfig cfg;
  cfg.initial_cwnd = 4.0;
  cfg.total_segments = 3;
  TcpSender snd = make_sender(cfg);
  snd.start();
  EXPECT_EQ(sent_seqs(), (std::vector<SeqNo>{1, 2, 3}));
  snd.on_ack(ack(4));
  EXPECT_TRUE(snd.finished());
  // Timer disarmed; no RTO fires later.
  sim_.run_until(TimePoint::zero() + Duration::seconds(5));
  EXPECT_EQ(snd.stats().timeouts, 0u);
}

TEST_F(SenderFixture, AddAvailableSegmentsFeedsIdleSender) {
  TcpConfig cfg;
  cfg.initial_cwnd = 4.0;
  cfg.total_segments = 0;  // nothing to send initially
  TcpSender snd = make_sender(cfg);
  snd.start();
  EXPECT_TRUE(sent_.empty());
  snd.add_available_segments(2);
  EXPECT_EQ(sent_seqs(), (std::vector<SeqNo>{1, 2}));
}

TEST_F(SenderFixture, TimeoutCallbackFires) {
  TcpConfig cfg;
  cfg.initial_cwnd = 1.0;
  TcpSender snd = make_sender(cfg);
  std::vector<SeqNo> timed_out;
  snd.set_timeout_callback([&](SeqNo s) { timed_out.push_back(s); });
  snd.start();
  sim_.run_until(TimePoint::zero() + Duration::seconds(1));
  EXPECT_EQ(timed_out, (std::vector<SeqNo>{1}));
}

TEST_F(SenderFixture, CwndTraceRecordsChanges) {
  TcpConfig cfg;
  cfg.initial_cwnd = 2.0;
  TcpSender snd = make_sender(cfg);
  snd.start();
  snd.on_ack(ack(3));
  EXPECT_GE(snd.cwnd_trace().size(), 2u);
  EXPECT_NEAR(snd.cwnd_trace().front().second, 2.0, 1e-9);
}

TEST_F(SenderFixture, StaleAckBelowSndUnaIgnored) {
  TcpConfig cfg;
  cfg.initial_cwnd = 4.0;
  TcpSender snd = make_sender(cfg);
  snd.start();
  snd.on_ack(ack(4));
  const double cwnd = snd.cwnd();
  snd.on_ack(ack(2));  // stale: below snd_una
  EXPECT_EQ(snd.snd_una(), 4u);
  EXPECT_DOUBLE_EQ(snd.cwnd(), cwnd);
  EXPECT_EQ(snd.stats().fast_retransmits, 0u);
}

}  // namespace
}  // namespace hsr::tcp
