// Differential tests for the flat sequence-window structures (seq_window.h)
// against the node-based reference containers they replaced: SeqScoreboard
// vs std::set<SeqNo>, SegmentRing vs std::map<SeqNo, SegmentInfo>. The
// randomized drivers replay adversarial SACK/reorder/pullback sequences —
// marks far above the floor, partial-word floor advances, F-RTO-style
// pullbacks of the scan cursor — and check every query against the
// reference after every step. Seeded and deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>

#include "tcp/seq_window.h"
#include "util/time.h"

namespace hsr::tcp {
namespace {

// Reference implementation of every SeqScoreboard query over std::set.
struct SetScoreboard {
  std::set<SeqNo> marks;
  SeqNo base = 0;

  bool mark(SeqNo seq) { return marks.insert(seq).second; }
  void advance_base(SeqNo new_base) {
    if (new_base <= base) return;
    marks.erase(marks.begin(), marks.lower_bound(new_base));
    base = new_base;
  }
  bool test(SeqNo seq) const { return marks.count(seq) != 0; }
  std::size_t rank_below(SeqNo seq) const {
    return static_cast<std::size_t>(
        std::distance(marks.begin(), marks.lower_bound(seq)));
  }
  SeqNo next_marked(SeqNo from) const {
    auto it = marks.lower_bound(std::max(from, base));
    return it == marks.end() ? SeqScoreboard::kNone : *it;
  }
  SeqNo next_hole(SeqNo from) const {
    SeqNo seq = from;
    while (marks.count(seq) != 0) ++seq;
    return seq;
  }
};

void expect_equivalent(const SeqScoreboard& flat, const SetScoreboard& ref,
                       SeqNo probe_hi, std::mt19937_64& rng) {
  ASSERT_EQ(flat.size(), ref.marks.size());
  ASSERT_EQ(flat.empty(), ref.marks.empty());
  if (!ref.marks.empty()) {
    ASSERT_EQ(flat.max_marked(), *ref.marks.rbegin());
    ASSERT_EQ(flat.min_marked(), *ref.marks.begin());
  } else {
    ASSERT_EQ(flat.min_marked(), SeqScoreboard::kNone);
  }
  // Point probes: a dense band at the floor (where the partial-word clear
  // of advance_base lives), every mark and its neighbours, and random
  // samples across the span plus a margin beyond it.
  auto probe = [&](SeqNo s) {
    ASSERT_EQ(flat.test(s), ref.test(s)) << "seq " << s;
    ASSERT_EQ(flat.rank_below(s), ref.rank_below(s)) << "seq " << s;
    ASSERT_EQ(flat.next_marked(s), ref.next_marked(s)) << "seq " << s;
    ASSERT_EQ(flat.next_hole(s), ref.next_hole(s)) << "seq " << s;
  };
  for (SeqNo s = ref.base; s <= std::min(ref.base + 80, probe_hi); ++s) probe(s);
  for (SeqNo m : ref.marks) {
    probe(m);
    if (m > ref.base) probe(m - 1);
    probe(m + 1);
  }
  for (int i = 0; i < 64; ++i) {
    probe(ref.base + rng() % (probe_hi - ref.base + 1));
  }
}

TEST(SeqScoreboardTest, FloorItselfMayStayMarked) {
  // A reordered cumulative ACK lands below an absorbed SACK block: the
  // floor advances to a marked sequence, which must survive — exactly like
  // the historical erase(begin, lower_bound(snd_una)) keeping the == entry.
  SeqScoreboard sb(/*base=*/1);
  sb.mark(5);
  sb.mark(7);
  sb.advance_base(5);
  EXPECT_TRUE(sb.test(5));
  EXPECT_EQ(sb.size(), 2u);
  EXPECT_EQ(sb.rank_below(6), 1u);
  sb.advance_base(6);
  EXPECT_FALSE(sb.test(5));
  EXPECT_EQ(sb.size(), 1u);
}

TEST(SeqScoreboardTest, MarkFarAboveFloorGrows) {
  SeqScoreboard sb(/*base=*/1, /*span_hint=*/64);
  sb.mark(2);
  sb.mark(100'000);  // far beyond the hinted span: must grow, not alias
  EXPECT_TRUE(sb.test(2));
  EXPECT_TRUE(sb.test(100'000));
  EXPECT_FALSE(sb.test(65'538));  // would alias seq 2 in a 1024-bit ring
  EXPECT_EQ(sb.rank_below(100'000), 1u);
  EXPECT_EQ(sb.next_hole(2), 3u);
  EXPECT_EQ(sb.next_marked(3), 100'000u);
}

TEST(SeqScoreboardTest, RandomizedDifferentialAgainstSet) {
  std::mt19937_64 rng(0xc0ffee2016ULL);
  SeqScoreboard flat(/*base=*/1, /*span_hint=*/64);
  SetScoreboard ref;
  ref.base = 1;
  SeqNo frontier = 1;  // grows like snd_next: marks land in [base, frontier]
  for (int step = 0; step < 4000; ++step) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 55) {
      // SACK arrival: mark a run of 1–4 sequences somewhere in the window.
      const SeqNo lo = ref.base + rng() % (frontier - ref.base + 1);
      const SeqNo len = 1 + rng() % 4;
      for (SeqNo s = lo; s < lo + len; ++s) {
        ASSERT_EQ(flat.mark(s), ref.mark(s)) << "seq " << s;
      }
      frontier = std::max(frontier, lo + len);
    } else if (op < 80) {
      // Cumulative ACK: advance the floor, sometimes ONTO a marked seq.
      const SeqNo adv = 1 + rng() % 96;
      const SeqNo nb = ref.base + adv;
      flat.advance_base(nb);
      ref.advance_base(nb);
      frontier = std::max(frontier, nb);
    } else if (op < 90) {
      // Window burst: jump the frontier so later marks land far above base
      // (SACK overshoot past the span hint → growth under load). Capped at
      // 8192 above the floor — 128x the constructor hint — so the check
      // passes stay cheap while growth still triggers repeatedly.
      frontier = std::min(frontier + 64 + rng() % 512, ref.base + 8192);
    } else {
      // F-RTO-style pullback: re-mark near the floor after far marks (the
      // sender rewinds snd_next and walks holes from snd_una again).
      const SeqNo s = ref.base + rng() % 8;
      ASSERT_EQ(flat.mark(s), ref.mark(s)) << "seq " << s;
    }
    if (step % 61 == 0) {
      expect_equivalent(flat, ref, frontier + 8, rng);
    }
  }
  expect_equivalent(flat, ref, frontier + 8, rng);
}

TEST(SegmentRingTest, RandomizedDifferentialAgainstMap) {
  std::mt19937_64 rng(0x2016deadULL);
  SegmentRing ring(/*capacity_hint=*/64);
  std::map<SeqNo, SegmentInfo> ref;
  SeqNo una = 1;       // live window floor (snd_una)
  SeqNo highest = 0;   // live window ceiling (highest_transmitted)
  for (int step = 0; step < 6000; ++step) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 60) {
      // New transmission at highest+1 (transmissions are always contiguous).
      const SeqNo seq = highest < una ? una : highest + 1;
      ring.ensure_window(una, highest, seq);
      SegmentInfo info;
      info.last_sent = util::TimePoint::from_ns(static_cast<std::int64_t>(step));
      info.retx_count = 0;
      ring.at(seq) = info;
      ref[seq] = info;
      highest = seq;
    } else if (op < 80 && highest >= una) {
      // Retransmission: bump retx_count of a live slot in place.
      const SeqNo seq = una + rng() % (highest - una + 1);
      ring.at(seq).retx_count += 1;
      ring.at(seq).last_sent =
          util::TimePoint::from_ns(static_cast<std::int64_t>(step));
      ref[seq].retx_count += 1;
      ref[seq].last_sent = util::TimePoint::from_ns(static_cast<std::int64_t>(step));
    } else if (highest >= una) {
      // Cumulative ACK: advance una (prefix erase in the reference; free in
      // the ring — stale slots below the floor are simply never read).
      const SeqNo nb = una + 1 + rng() % (highest - una + 1);
      ref.erase(ref.begin(), ref.lower_bound(nb));
      una = nb;
    }
    // The ring must agree with the map on every live slot.
    if (step % 97 == 0 && highest >= una) {
      for (SeqNo s = una; s <= highest; ++s) {
        auto it = ref.find(s);
        ASSERT_TRUE(it != ref.end()) << "seq " << s;
        ASSERT_EQ(ring.at(s).last_sent, it->second.last_sent) << "seq " << s;
        ASSERT_EQ(ring.at(s).retx_count, it->second.retx_count) << "seq " << s;
      }
    }
  }
}

TEST(SegmentRingTest, GrowthPreservesLiveWindow) {
  SegmentRing ring(/*capacity_hint=*/64);
  const SeqNo una = 10;
  for (SeqNo s = una; s < una + 64; ++s) {
    ring.ensure_window(una, s - 1, s);
    SegmentInfo info;
    info.last_sent = util::TimePoint::from_ns(static_cast<std::int64_t>(s));
    info.retx_count = static_cast<std::uint32_t>(s % 7);
    ring.at(s) = info;
  }
  // Admitting one more sequence than the arena holds doubles it and must
  // re-place every live slot under the new mask.
  ring.ensure_window(una, una + 63, una + 64);
  EXPECT_GE(ring.capacity(), 128u);
  for (SeqNo s = una; s < una + 64; ++s) {
    EXPECT_EQ(ring.at(s).last_sent.ns(), static_cast<std::int64_t>(s));
    EXPECT_EQ(ring.at(s).retx_count, static_cast<std::uint32_t>(s % 7));
  }
}

}  // namespace
}  // namespace hsr::tcp
