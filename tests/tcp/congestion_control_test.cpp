// Behavioral tests for the NewReno and Veno congestion-control variants.
#include <gtest/gtest.h>

#include <vector>

#include "tcp/sender.h"

namespace hsr::tcp {
namespace {

class CcFixture : public testing::Test {
 protected:
  TcpSender make_sender(CongestionControl cc, double initial_cwnd = 8.0,
                        double initial_ssthresh = 1e9) {
    TcpConfig cfg;
    cfg.congestion_control = cc;
    cfg.initial_cwnd = initial_cwnd;
    cfg.initial_ssthresh = initial_ssthresh;
    // Keep the RTO clear of the crafted inter-ACK gaps below.
    cfg.rto.initial_rto = Duration::seconds(10);
    cfg.rto.min_rto = Duration::seconds(5);
    return TcpSender(sim_, cfg, 1,
                     [this](net::Packet p) { sent_.push_back(std::move(p)); });
  }

  static net::Packet ack(SeqNo ack_next) {
    net::Packet p;
    p.id = net::allocate_packet_id();
    p.kind = net::PacketKind::kAck;
    p.ack_next = ack_next;
    return p;
  }

  // Delivers an ACK `rtt` after the current time (so the sender records an
  // RTT sample for the newest acked segment). Bounded run: the sender's RTO
  // timer re-arms forever with an infinite backlog, so run() would not drain.
  void ack_later(TcpSender& snd, SeqNo ack_next, Duration rtt) {
    bool delivered = false;
    sim_.after(rtt, [&snd, &delivered, ack_next] {
      snd.on_ack(ack(ack_next));
      delivered = true;
    });
    sim_.run_until(sim_.now() + rtt);
    ASSERT_TRUE(delivered);
  }

  unsigned count_retx_of(SeqNo seq) const {
    unsigned n = 0;
    for (const auto& p : sent_) {
      if (p.seq == seq && p.is_retransmission) ++n;
    }
    return n;
  }

  sim::Simulator sim_;
  std::vector<net::Packet> sent_;
};

TEST_F(CcFixture, NewRenoPartialAckRetransmitsNextHoleImmediately) {
  TcpSender snd = make_sender(CongestionControl::kNewReno);
  snd.start();  // 1..8 in flight; suppose 2 and 5 are lost
  // Dup ACKs for 2 -> fast retransmit of 2.
  snd.on_ack(ack(2));
  for (int i = 0; i < 3; ++i) snd.on_ack(ack(2));
  ASSERT_TRUE(snd.in_fast_recovery());
  EXPECT_EQ(count_retx_of(2), 1u);

  // Partial ACK: 2 is repaired, but 5 is still missing.
  snd.on_ack(ack(5));
  // NewReno stays in recovery and retransmits 5 at once — no second set of
  // dup ACKs, no RTO.
  EXPECT_TRUE(snd.in_fast_recovery());
  EXPECT_EQ(count_retx_of(5), 1u);
  EXPECT_EQ(snd.stats().fast_retransmits, 1u);  // one episode

  // Full ACK past the recovery point (snd_next-1 at loss detection) ends
  // recovery.
  snd.on_ack(ack(11));
  EXPECT_FALSE(snd.in_fast_recovery());
  EXPECT_EQ(snd.stats().timeouts, 0u);
}

TEST_F(CcFixture, RenoExitsRecoveryOnPartialAck) {
  TcpSender snd = make_sender(CongestionControl::kReno);
  snd.start();
  snd.on_ack(ack(2));
  for (int i = 0; i < 3; ++i) snd.on_ack(ack(2));
  ASSERT_TRUE(snd.in_fast_recovery());
  snd.on_ack(ack(5));  // partial: classic Reno deflates and exits
  EXPECT_FALSE(snd.in_fast_recovery());
  EXPECT_EQ(count_retx_of(5), 0u);
}

TEST_F(CcFixture, NewRenoMultiLossWindowAvoidsTimeout) {
  // Three losses in one window, repaired hole by hole inside one episode.
  TcpSender snd = make_sender(CongestionControl::kNewReno, 10.0);
  snd.start();  // 1..10; losses at 1, 4, 7
  for (int i = 0; i < 3; ++i) snd.on_ack(ack(1));  // dups for 1 (from 2,3 + ...)
  ASSERT_TRUE(snd.in_fast_recovery());
  snd.on_ack(ack(4));   // partial -> retx 4
  snd.on_ack(ack(7));   // partial -> retx 7
  snd.on_ack(ack(11));  // full
  EXPECT_FALSE(snd.in_fast_recovery());
  EXPECT_EQ(count_retx_of(1), 1u);
  EXPECT_EQ(count_retx_of(4), 1u);
  EXPECT_EQ(count_retx_of(7), 1u);
  EXPECT_EQ(snd.stats().timeouts, 0u);
  EXPECT_EQ(snd.stats().fast_retransmits, 1u);
}

// The sender samples RTT as (now - last_send of the newest cumulatively
// acked segment), so these tests ack the whole outstanding window at a
// chosen delay after its (re)fill to shape the sample exactly.

TEST_F(CcFixture, VenoRandomLossCutsGently) {
  // Stable RTT (no queue buildup): backlog ~ 0 -> the dup-ack loss is
  // classified random and ssthresh becomes 4/5 of flight, not 1/2.
  TcpSender snd = make_sender(CongestionControl::kVeno, 8.0, 8.0);
  snd.start();                                  // t=0: sends 1..8
  ack_later(snd, 9, Duration::millis(100));     // base RTT = 100 ms; sends 9..16
  ack_later(snd, 17, Duration::millis(100));    // last RTT = 100 ms: backlog 0
  const double flight = static_cast<double>(snd.snd_next() - snd.snd_una());
  for (int i = 0; i < 3; ++i) snd.on_ack(ack(17));
  ASSERT_TRUE(snd.in_fast_recovery());
  EXPECT_NEAR(snd.ssthresh(), std::max(flight * 0.8, 2.0), 1e-9);
}

TEST_F(CcFixture, VenoCongestiveLossHalves) {
  // RTT inflated well above base: backlog >= beta -> classic halving.
  TcpSender snd = make_sender(CongestionControl::kVeno, 8.0, 8.0);
  snd.start();                                  // t=0: sends 1..8
  ack_later(snd, 9, Duration::millis(100));     // base RTT = 100 ms; sends 9..16
  ack_later(snd, 17, Duration::millis(400));    // last RTT = 400 ms: backlog ~6
  const double flight = static_cast<double>(snd.snd_next() - snd.snd_una());
  ASSERT_GE(flight, 5.0);  // so 1/2 vs 4/5 branches are distinguishable
  for (int i = 0; i < 3; ++i) snd.on_ack(ack(17));
  ASSERT_TRUE(snd.in_fast_recovery());
  EXPECT_NEAR(snd.ssthresh(), std::max(flight * 0.5, 2.0), 1e-9);
}

TEST_F(CcFixture, VenoGrowsAtHalfRateWhenBacklogged) {
  TcpSender snd = make_sender(CongestionControl::kVeno, 8.0, 8.0);
  snd.start();
  ack_later(snd, 9, Duration::millis(100));     // base RTT
  ack_later(snd, 17, Duration::millis(400));    // enter the backlogged regime
  const double before = snd.cwnd();
  // Two whole-window ACKs in the backlogged regime: only one increments.
  ack_later(snd, snd.snd_next(), Duration::millis(400));
  ack_later(snd, snd.snd_next(), Duration::millis(400));
  const double grown = snd.cwnd() - before;
  EXPECT_GT(grown, 0.0);
  EXPECT_LT(grown, 2.0 / before);  // strictly less than two full 1/cwnd steps
}

TEST_F(CcFixture, RenoIsDefault) {
  TcpConfig cfg;
  EXPECT_EQ(cfg.congestion_control, CongestionControl::kReno);
}

TEST_F(CcFixture, AllVariantsSurviveTimeoutPath) {
  for (CongestionControl cc : {CongestionControl::kReno, CongestionControl::kNewReno,
                               CongestionControl::kVeno}) {
    sent_.clear();
    sim::Simulator local_sim;
    TcpConfig cfg;
    cfg.congestion_control = cc;
    cfg.initial_cwnd = 4.0;
    TcpSender snd(local_sim, cfg, 1, [this](net::Packet p) {
      sent_.push_back(std::move(p));
    });
    snd.start();
    local_sim.run_until(util::TimePoint::from_seconds(1));
    EXPECT_EQ(snd.stats().timeouts, 1u);
    EXPECT_NEAR(snd.cwnd(), 1.0, 1e-9);
    snd.on_ack(ack(5));
    EXPECT_FALSE(snd.in_timeout_recovery());
  }
}

}  // namespace
}  // namespace hsr::tcp
