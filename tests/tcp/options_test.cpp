// TcpOptions — the shared protocol-knob struct every configuration surface
// carries — and its expansion into / extraction from the stack-level
// TcpConfig.
#include "tcp/types.h"

#include <gtest/gtest.h>

namespace hsr::tcp {
namespace {

TcpOptions sample_options() {
  TcpOptions o;
  o.congestion_control = CongestionControl::kVeno;
  o.enable_sack = true;
  o.enable_frto = true;
  o.adaptive_delack = true;
  o.delayed_ack_b = 1;
  o.min_rto = util::Duration::millis(350);
  o.mss_bytes = 1200;
  return o;
}

TEST(TcpOptionsTest, DefaultsMatchTheStackDefaults) {
  const TcpOptions o;
  const TcpConfig c;
  EXPECT_EQ(o.congestion_control, c.congestion_control);
  EXPECT_EQ(o.enable_sack, c.enable_sack);
  EXPECT_EQ(o.enable_frto, c.enable_frto);
  EXPECT_EQ(o.adaptive_delack, c.adaptive_delack);
  EXPECT_EQ(o.delayed_ack_b, c.delayed_ack_b);
  EXPECT_EQ(o.min_rto, c.rto.min_rto);
  EXPECT_EQ(o.mss_bytes, c.mss_bytes);
}

TEST(TcpOptionsTest, MakeTcpConfigSetsEveryKnobAndTheWindow) {
  const TcpOptions o = sample_options();
  const TcpConfig c = make_tcp_config(o, 96);
  EXPECT_EQ(c.congestion_control, CongestionControl::kVeno);
  EXPECT_TRUE(c.enable_sack);
  EXPECT_TRUE(c.enable_frto);
  EXPECT_TRUE(c.adaptive_delack);
  EXPECT_EQ(c.delayed_ack_b, 1u);
  EXPECT_EQ(c.rto.min_rto, util::Duration::millis(350));
  EXPECT_EQ(c.mss_bytes, 1200u);
  EXPECT_EQ(c.receiver_window, 96u);
  // Everything outside the options keeps its TcpConfig default.
  EXPECT_EQ(c.total_segments, TcpConfig{}.total_segments);
}

TEST(TcpOptionsTest, OptionsOfInvertsMakeTcpConfig) {
  const TcpOptions o = sample_options();
  EXPECT_EQ(options_of(make_tcp_config(o, 64)), o);
  const TcpOptions defaults;
  EXPECT_EQ(options_of(make_tcp_config(defaults, 64)), defaults);
  EXPECT_FALSE(o == defaults);
}

}  // namespace
}  // namespace hsr::tcp
