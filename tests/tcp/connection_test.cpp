#include "tcp/connection.h"

#include <gtest/gtest.h>

#include <memory>

#include "model/padhye.h"
#include "trace/capture.h"
#include "util/rng.h"

namespace hsr::tcp {
namespace {

ConnectionConfig clean_config() {
  ConnectionConfig cfg;
  cfg.tcp.receiver_window = 64;
  cfg.tcp.delayed_ack_b = 2;
  cfg.downlink.rate_bps = 10e6;
  cfg.downlink.prop_delay = util::Duration::millis(20);
  cfg.downlink.queue_capacity = 200;
  cfg.uplink.rate_bps = 10e6;
  cfg.uplink.prop_delay = util::Duration::millis(20);
  cfg.uplink.queue_capacity = 200;
  return cfg;
}

TEST(ConnectionTest, LosslessFlowIsWindowLimited) {
  sim::Simulator sim;
  ConnectionConfig cfg = clean_config();
  cfg.downlink.rate_bps = 50e6;  // keep the path capacity above W_m/RTT
  Connection conn(sim, 1, cfg, std::make_unique<net::PerfectChannel>(),
                  std::make_unique<net::PerfectChannel>());
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(30));

  // RTT ~= 40.5 ms (2x20ms prop + serialization); ceiling = W_m / RTT.
  const double rtt = 0.0405;
  const double ceiling = 64.0 / rtt;
  EXPECT_GT(conn.goodput_segments_per_s(), 0.85 * ceiling);
  EXPECT_LE(conn.goodput_segments_per_s(), 1.05 * ceiling);
  EXPECT_EQ(conn.sender().stats().timeouts, 0u);
  EXPECT_EQ(conn.receiver().stats().duplicate_segments, 0u);
}

TEST(ConnectionTest, NoLossNoRetransmissions) {
  sim::Simulator sim;
  Connection conn(sim, 1, clean_config(), std::make_unique<net::PerfectChannel>(),
                  std::make_unique<net::PerfectChannel>());
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(10));
  EXPECT_EQ(conn.sender().stats().retransmissions, 0u);
  EXPECT_EQ(conn.receiver().stats().unique_segments,
            conn.receiver().stats().segments_received);
}

TEST(ConnectionTest, ReceiverStatsMatchLinkStats) {
  sim::Simulator sim;
  Connection conn(sim, 1, clean_config(), std::make_unique<net::PerfectChannel>(),
                  std::make_unique<net::PerfectChannel>());
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(5));
  EXPECT_EQ(conn.downlink().stats().delivered,
            conn.receiver().stats().segments_received);
  EXPECT_EQ(conn.uplink().stats().delivered, conn.sender().stats().acks_received);
}

// Classic validation: simulated Reno goodput under Bernoulli loss should sit
// near the PFTK prediction in the small-p regime (PFTK's own empirical
// accuracy band).
class PftkValidation : public testing::TestWithParam<double> {};

TEST_P(PftkValidation, GoodputNearPftkPrediction) {
  const double p = GetParam();
  sim::Simulator sim;
  ConnectionConfig cfg = clean_config();
  cfg.tcp.receiver_window = 1000;  // effectively unlimited
  cfg.downlink.rate_bps = 100e6;
  cfg.uplink.rate_bps = 100e6;
  cfg.downlink.queue_capacity = 2000;
  cfg.uplink.queue_capacity = 2000;
  cfg.downlink.prop_delay = util::Duration::millis(50);
  cfg.uplink.prop_delay = util::Duration::millis(50);

  trace::FlowCapture cap;
  Connection conn(sim, 1, cfg,
                  std::make_unique<net::BernoulliChannel>(p, util::Rng(99)),
                  std::make_unique<net::PerfectChannel>());
  conn.set_downlink_tap(&cap.data);
  conn.set_uplink_tap(&cap.acks);
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(120));

  model::PadhyeInputs in;
  in.p = p;
  in.path.rtt_s = cap.estimated_rtt().to_seconds();
  in.path.t0_s = 0.4;
  in.path.b = 2;
  in.path.w_m = 1000;
  const double predicted = model::padhye_throughput_pps(in);
  const double measured = conn.goodput_segments_per_s();
  EXPECT_GT(measured, 0.6 * predicted);
  EXPECT_LT(measured, 1.4 * predicted);
}

INSTANTIATE_TEST_SUITE_P(LossRates, PftkValidation,
                         testing::Values(0.002, 0.005, 0.01));

TEST(ConnectionTest, AckBlackoutCausesSpuriousTimeout) {
  // Data path perfect; the ACK path dies completely for a 3-second window.
  // The sender must time out even though every data packet arrived — the
  // paper's spurious-RTO mechanism (Fig. 5) — and the receiver must see the
  // duplicate payload that the paper's methodology keys on.
  sim::Simulator sim;
  ConnectionConfig cfg = clean_config();
  auto blackout = std::make_unique<net::FunctionalChannel>(
      [](const net::Packet&, util::TimePoint now) {
        const bool dead = now >= util::TimePoint::from_seconds(5.0) &&
                          now < util::TimePoint::from_seconds(8.0);
        return dead ? 1.0 : 0.0;
      },
      [](const net::Packet&, util::TimePoint) { return util::Duration::zero(); },
      util::Rng(1));
  Connection conn(sim, 1, cfg, std::make_unique<net::PerfectChannel>(),
                  std::move(blackout));
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(20));

  EXPECT_GE(conn.sender().stats().timeouts, 1u);
  EXPECT_GE(conn.receiver().stats().duplicate_segments, 1u);
  // The flow recovers after the blackout: new data delivered past it.
  EXPECT_GT(conn.receiver().stats().unique_segments, 1000u);
}

TEST(ConnectionTest, DataBlackoutCausesGenuineTimeoutAndRecovery) {
  sim::Simulator sim;
  ConnectionConfig cfg = clean_config();
  auto blackout = std::make_unique<net::FunctionalChannel>(
      [](const net::Packet&, util::TimePoint now) {
        const bool dead = now >= util::TimePoint::from_seconds(5.0) &&
                          now < util::TimePoint::from_seconds(8.0);
        return dead ? 1.0 : 0.0;
      },
      [](const net::Packet&, util::TimePoint) { return util::Duration::zero(); },
      util::Rng(1));
  Connection conn(sim, 1, cfg, std::move(blackout),
                  std::make_unique<net::PerfectChannel>());
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(20));

  EXPECT_GE(conn.sender().stats().timeouts, 1u);
  EXPECT_GE(conn.sender().stats().max_backoff_seen, 2u);
  // Transfer continues after the blackout.
  const SeqNo final_delivered = conn.receiver().stats().highest_contiguous;
  EXPECT_GT(final_delivered, 10000u);
}

TEST(ConnectionTest, GoodputBpsConsistentWithSegments) {
  sim::Simulator sim;
  Connection conn(sim, 1, clean_config(), std::make_unique<net::PerfectChannel>(),
                  std::make_unique<net::PerfectChannel>());
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(5));
  EXPECT_NEAR(conn.goodput_bps(),
              conn.goodput_segments_per_s() * 1400 * 8, 1.0);
}

TEST(ConnectionTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Simulator sim;
    ConnectionConfig cfg = clean_config();
    Connection conn(sim, 1, cfg,
                    std::make_unique<net::BernoulliChannel>(0.01, util::Rng(7)),
                    std::make_unique<net::BernoulliChannel>(0.005, util::Rng(8)));
    conn.start();
    sim.run_until(util::TimePoint::from_seconds(10));
    return conn.receiver().stats().unique_segments;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hsr::tcp
