#include "tcp/rto.h"

#include <gtest/gtest.h>

namespace hsr::tcp {
namespace {

TEST(RtoEstimatorTest, InitialRtoBeforeAnySample) {
  RtoEstimator est;
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), Duration::seconds(1));
}

TEST(RtoEstimatorTest, FirstSampleSetsSrttAndVar) {
  RtoEstimator est;
  est.add_sample(Duration::millis(100));
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), Duration::millis(100));
  EXPECT_EQ(est.rttvar(), Duration::millis(50));
  // base = srtt + max(4*rttvar, min_rto) = 100 + max(200, 200) = 300 ms.
  EXPECT_EQ(est.base_rto(), Duration::millis(300));
}

TEST(RtoEstimatorTest, VarTermFlooredAtMinRto) {
  RtoEstimator est;
  // Perfectly stable RTT drives rttvar toward 0; the floor keeps
  // RTO >= srtt + min_rto.
  for (int i = 0; i < 200; ++i) est.add_sample(Duration::millis(80));
  EXPECT_GE(est.base_rto(), Duration::millis(80 + 200));
  EXPECT_LT(est.base_rto(), Duration::millis(80 + 200 + 50));
}

TEST(RtoEstimatorTest, EwmaConvergesToStableRtt) {
  RtoEstimator est;
  est.add_sample(Duration::millis(500));
  for (int i = 0; i < 100; ++i) est.add_sample(Duration::millis(100));
  EXPECT_NEAR(est.srtt().to_millis(), 100.0, 5.0);
}

TEST(RtoEstimatorTest, JitterInflatesRto) {
  RtoEstimator stable, jittery;
  for (int i = 0; i < 100; ++i) {
    stable.add_sample(Duration::millis(200));
    jittery.add_sample(Duration::millis(i % 2 == 0 ? 100 : 300));
  }
  EXPECT_GT(jittery.base_rto(), stable.base_rto());
}

TEST(RtoEstimatorTest, BackoffDoublesUpToCap) {
  RtoConfig cfg;
  cfg.backoff_cap = 64;
  RtoEstimator est(cfg);
  est.add_sample(Duration::millis(100));
  const Duration base = est.base_rto();
  est.backoff();
  EXPECT_EQ(est.rto(), Duration::nanos(base.ns() * 2));
  for (int i = 0; i < 10; ++i) est.backoff();
  EXPECT_EQ(est.backoff_multiplier(), 64u);
  EXPECT_EQ(est.rto(), Duration::nanos(base.ns() * 64));
}

TEST(RtoEstimatorTest, NewSampleResetsBackoff) {
  RtoEstimator est;
  est.add_sample(Duration::millis(100));
  est.backoff();
  est.backoff();
  EXPECT_EQ(est.backoff_multiplier(), 4u);
  est.add_sample(Duration::millis(100));
  EXPECT_EQ(est.backoff_multiplier(), 1u);
}

TEST(RtoEstimatorTest, ResetBackoffWithoutSample) {
  RtoEstimator est;
  est.backoff();
  EXPECT_EQ(est.backoff_multiplier(), 2u);
  est.reset_backoff();
  EXPECT_EQ(est.backoff_multiplier(), 1u);
}

TEST(RtoEstimatorTest, AbsoluteCeilingHolds) {
  RtoConfig cfg;
  cfg.max_rto = Duration::seconds(10);
  RtoEstimator est(cfg);
  est.add_sample(Duration::seconds(20));
  EXPECT_LE(est.base_rto(), Duration::seconds(10));
  for (int i = 0; i < 10; ++i) est.backoff();
  EXPECT_LE(est.rto(), Duration::seconds(10));
}

class RtoBackoffSequence : public testing::TestWithParam<unsigned> {};

TEST_P(RtoBackoffSequence, MultiplierIsPowerOfTwoCapped) {
  const unsigned steps = GetParam();
  RtoConfig cfg;
  cfg.backoff_cap = 64;
  RtoEstimator est(cfg);
  for (unsigned i = 0; i < steps; ++i) est.backoff();
  const unsigned expected = std::min(1u << std::min(steps, 31u), 64u);
  EXPECT_EQ(est.backoff_multiplier(), expected);
}

INSTANTIATE_TEST_SUITE_P(BackoffSteps, RtoBackoffSequence,
                         testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 12u));

}  // namespace
}  // namespace hsr::tcp
