// Tests for the simplified SACK implementation (RFC 2018 reporting at the
// receiver; scoreboard + hole retransmission at the sender).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/channel.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "util/rng.h"

namespace hsr::tcp {
namespace {

class SackReceiverFixture : public testing::Test {
 protected:
  TcpReceiver make_receiver(bool sack) {
    TcpConfig cfg;
    cfg.delayed_ack_b = 1;
    cfg.enable_sack = sack;
    return TcpReceiver(sim_, cfg, 1,
                       [this](net::Packet p) { acks_.push_back(std::move(p)); });
  }

  net::Packet data(SeqNo seq) {
    net::Packet p;
    p.id = net::allocate_packet_id();
    p.kind = net::PacketKind::kData;
    p.seq = seq;
    return p;
  }

  sim::Simulator sim_;
  std::vector<net::Packet> acks_;
};

TEST_F(SackReceiverFixture, ReportsSingleBlock) {
  TcpReceiver rcv = make_receiver(true);
  rcv.on_data(data(1));
  acks_.clear();
  rcv.on_data(data(4));  // hole at 2,3
  rcv.on_data(data(5));
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(acks_[1].ack_next, 2u);
  ASSERT_EQ(acks_[1].sack_count, 1);
  EXPECT_EQ(acks_[1].sack[0], (std::pair<SeqNo, SeqNo>{4, 6}));
}

TEST_F(SackReceiverFixture, ReportsMultipleBlocks) {
  TcpReceiver rcv = make_receiver(true);
  rcv.on_data(data(3));
  rcv.on_data(data(5));
  rcv.on_data(data(6));
  acks_.clear();
  rcv.on_data(data(9));
  ASSERT_EQ(acks_.size(), 1u);
  ASSERT_EQ(acks_[0].sack_count, 3);
  EXPECT_EQ(acks_[0].sack[0], (std::pair<SeqNo, SeqNo>{3, 4}));
  EXPECT_EQ(acks_[0].sack[1], (std::pair<SeqNo, SeqNo>{5, 7}));
  EXPECT_EQ(acks_[0].sack[2], (std::pair<SeqNo, SeqNo>{9, 10}));
}

TEST_F(SackReceiverFixture, CapsAtThreeBlocks) {
  TcpReceiver rcv = make_receiver(true);
  for (SeqNo s : {2, 4, 6, 8, 10}) rcv.on_data(data(s));
  ASSERT_FALSE(acks_.empty());
  EXPECT_EQ(acks_.back().sack_count, 3);
}

TEST_F(SackReceiverFixture, NoBlocksWhenDisabledOrInOrder) {
  TcpReceiver off = make_receiver(false);
  off.on_data(data(3));
  EXPECT_EQ(acks_.back().sack_count, 0);
  acks_.clear();

  TcpReceiver on = make_receiver(true);
  on.on_data(data(1));
  on.on_data(data(2));
  for (const auto& a : acks_) EXPECT_EQ(a.sack_count, 0);
}

class SackSenderFixture : public testing::Test {
 protected:
  TcpSender make_sender(bool sack, double cwnd = 10.0) {
    TcpConfig cfg;
    cfg.enable_sack = sack;
    cfg.initial_cwnd = cwnd;
    return TcpSender(sim_, cfg, 1,
                     [this](net::Packet p) { sent_.push_back(std::move(p)); });
  }

  static net::Packet ack(SeqNo ack_next,
                         std::vector<std::pair<SeqNo, SeqNo>> blocks = {}) {
    net::Packet p;
    p.id = net::allocate_packet_id();
    p.kind = net::PacketKind::kAck;
    p.ack_next = ack_next;
    for (const auto& b : blocks) {
      p.sack[p.sack_count++] = b;
    }
    return p;
  }

  std::vector<SeqNo> retx_seqs() const {
    std::vector<SeqNo> out;
    for (const auto& p : sent_) {
      if (p.is_retransmission) out.push_back(p.seq);
    }
    return out;
  }

  sim::Simulator sim_;
  std::vector<net::Packet> sent_;
};

TEST_F(SackSenderFixture, FastRecoveryRetransmitsOnlyHoles) {
  TcpSender snd = make_sender(true);
  snd.start();  // 1..10; 1 and 4 lost, rest delivered
  // Three dup ACKs carrying SACK info: receiver has 2,3 and 5..10.
  for (int i = 0; i < 3; ++i) {
    snd.on_ack(ack(1, {{2, 4}, {5, 11}}));
  }
  ASSERT_TRUE(snd.in_fast_recovery());
  // Fast retransmit sent seq 1. The next dup ACK repairs hole 4 instead of
  // injecting new data.
  snd.on_ack(ack(1, {{2, 4}, {5, 11}}));
  const auto retx = retx_seqs();
  ASSERT_GE(retx.size(), 2u);
  EXPECT_EQ(retx[0], 1u);
  EXPECT_EQ(retx[1], 4u);
  // Seqs 2,3,5..10 were never retransmitted.
  for (SeqNo s : retx) {
    EXPECT_TRUE(s == 1 || s == 4);
  }
}

TEST_F(SackSenderFixture, PartialAckStaysInRecoveryAndRepairsNextHole) {
  TcpSender snd = make_sender(true);
  snd.start();
  for (int i = 0; i < 3; ++i) snd.on_ack(ack(1, {{2, 4}, {5, 11}}));
  ASSERT_TRUE(snd.in_fast_recovery());
  // Retx of 1 lands: cumulative jumps to 4 (receiver has 2,3), still below
  // the recovery point.
  snd.on_ack(ack(4, {{5, 11}}));
  EXPECT_TRUE(snd.in_fast_recovery());
  const auto retx = retx_seqs();
  EXPECT_EQ(retx.back(), 4u);  // the remaining hole
  // Full ACK ends recovery.
  snd.on_ack(ack(11));
  EXPECT_FALSE(snd.in_fast_recovery());
  EXPECT_EQ(snd.stats().timeouts, 0u);
}

TEST_F(SackSenderFixture, GoBackNSkipsSackedSegments) {
  TcpSender snd = make_sender(true, 6.0);
  snd.start();  // 1..6 in flight
  // Receiver reports 3..6 received while 1,2 (and all ACK progress) die:
  // one dup ACK with SACK info, then silence until the RTO.
  snd.on_ack(ack(1, {{3, 7}}));
  sim_.run_until(util::TimePoint::from_seconds(1));  // RTO
  EXPECT_EQ(snd.stats().timeouts, 1u);
  sent_.clear();
  // Recovery ACK for the retransmitted seq 1: go-back-N resumes but must
  // skip the SACKed 3..6 and resend only seq 2.
  snd.on_ack(ack(2, {{3, 7}}));
  std::vector<SeqNo> sent;
  for (const auto& p : sent_) sent.push_back(p.seq);
  ASSERT_FALSE(sent.empty());
  EXPECT_EQ(sent[0], 2u);
  for (SeqNo s : sent) {
    EXPECT_TRUE(s == 2 || s >= 7) << "resent SACKed segment " << s;
  }
}

TEST_F(SackSenderFixture, ScoreboardPrunedOnCumulativeAck) {
  TcpSender snd = make_sender(true);
  snd.start();
  snd.on_ack(ack(1, {{3, 5}}));
  snd.on_ack(ack(6));  // cumulative past the SACKed block
  // No stale state: new transmissions continue from snd_next.
  EXPECT_EQ(snd.snd_una(), 6u);
  EXPECT_LE(snd.snd_una(), snd.snd_next());
}

TEST(SackEndToEndTest, SackBeatsGoBackNAfterBurstLoss) {
  // A downlink micro-burst kills several segments of one window; SACK must
  // deliver fewer duplicate payloads than go-back-N at equal-or-better
  // goodput.
  auto run_variant = [](bool sack) {
    sim::Simulator sim;
    ConnectionConfig cfg;
    cfg.tcp.receiver_window = 64;
    cfg.tcp.enable_sack = sack;
    cfg.downlink.rate_bps = 10e6;
    cfg.downlink.prop_delay = util::Duration::millis(20);
    cfg.uplink.rate_bps = 10e6;
    cfg.uplink.prop_delay = util::Duration::millis(20);
    auto bursty = std::make_unique<net::FunctionalChannel>(
        [](const net::Packet&, util::TimePoint now) {
          const double t = now.to_seconds();
          // A 40 ms full-loss burst every 2 seconds.
          return (t > 1.0 && std::fmod(t, 2.0) < 0.04) ? 1.0 : 0.0;
        },
        [](const net::Packet&, util::TimePoint) { return util::Duration::zero(); },
        util::Rng(1));
    Connection conn(sim, 1, cfg, std::move(bursty),
                    std::make_unique<net::PerfectChannel>());
    conn.start();
    sim.run_until(util::TimePoint::from_seconds(30));
    return std::pair<std::uint64_t, std::uint64_t>(
        conn.receiver().stats().unique_segments,
        conn.receiver().stats().duplicate_segments);
  };

  const auto [gbn_unique, gbn_dups] = run_variant(false);
  const auto [sack_unique, sack_dups] = run_variant(true);
  EXPECT_LE(sack_dups, gbn_dups);
  EXPECT_GE(sack_unique, gbn_unique * 95 / 100);
}

}  // namespace
}  // namespace hsr::tcp
