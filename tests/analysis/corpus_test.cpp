#include "analysis/corpus.h"

#include <gtest/gtest.h>

namespace hsr::analysis {
namespace {

FlowAnalysis make_flow(double data_loss, double ack_loss, double q,
                       unsigned sequences, unsigned spurious,
                       unsigned fast_retx, double recovery_s) {
  FlowAnalysis a;
  a.data_loss_rate = data_loss;
  a.ack_loss_rate = ack_loss;
  a.recovery_retx_loss_rate = q;
  a.fast_retransmits = fast_retx;
  for (unsigned i = 0; i < sequences; ++i) {
    TimeoutSequence ts;
    ts.seq = i + 1;
    ts.spurious = i < spurious;
    ts.recovered_observed = true;
    ts.ca_end = util::TimePoint::zero();
    ts.recovered = util::TimePoint::from_seconds(recovery_s);
    ts.first_retx = util::TimePoint::from_seconds(recovery_s / 2);
    a.timeout_sequences.push_back(ts);
  }
  a.loss_indications = sequences + fast_retx;
  a.timeout_probability =
      a.loss_indications == 0
          ? 0.0
          : static_cast<double>(sequences) / a.loss_indications;
  return a;
}

TEST(CorpusTest, HeadlineAggregatesHighSpeedAndStationary) {
  Corpus corpus;
  corpus.add("China Mobile", true, make_flow(0.008, 0.006, 0.3, 4, 2, 8, 5.0));
  corpus.add("China Mobile", true, make_flow(0.006, 0.007, 0.2, 2, 1, 10, 3.0));
  corpus.add("China Mobile", false, make_flow(0.0005, 0.0005, 0.0, 1, 0, 2, 0.6));

  const Corpus::Headline h = corpus.headline();
  EXPECT_EQ(h.flows_highspeed, 2u);
  EXPECT_EQ(h.flows_stationary, 1u);
  EXPECT_EQ(h.timeout_sequences_highspeed, 6u);
  // 3 spurious of 6 sequences.
  EXPECT_NEAR(h.spurious_timeout_share, 0.5, 1e-12);
  // Recovery: 4 flows' sequences at 5 s + 2 at 3 s => (4*5 + 2*3)/6.
  EXPECT_NEAR(h.mean_recovery_s_highspeed, 26.0 / 6.0, 1e-9);
  EXPECT_NEAR(h.mean_recovery_s_stationary, 0.6, 1e-12);
  EXPECT_NEAR(h.mean_ack_loss_highspeed, 0.0065, 1e-12);
  EXPECT_NEAR(h.mean_ack_loss_stationary, 0.0005, 1e-12);
  EXPECT_NEAR(h.mean_data_loss_highspeed, 0.007, 1e-12);
  EXPECT_NEAR(h.mean_recovery_loss_highspeed, 0.25, 1e-12);
}

TEST(CorpusTest, CdfsFilterByMobility) {
  Corpus corpus;
  corpus.add("A", true, make_flow(0.01, 0.005, 0.3, 1, 0, 1, 2.0));
  corpus.add("A", false, make_flow(0.001, 0.0001, 0.0, 0, 0, 1, 0.0));

  auto hs = corpus.ack_loss_cdf(true);
  auto st = corpus.ack_loss_cdf(false);
  ASSERT_EQ(hs.size(), 1u);
  ASSERT_EQ(st.size(), 1u);
  EXPECT_GT(hs.mean(), st.mean());

  auto lifetime = corpus.lifetime_data_loss_cdf(true);
  EXPECT_EQ(lifetime.size(), 1u);
  // Recovery-loss CDF only includes flows that had timeouts.
  EXPECT_EQ(corpus.recovery_loss_cdf(true).size(), 1u);
  EXPECT_EQ(corpus.recovery_loss_cdf(false).size(), 0u);
}

TEST(CorpusTest, AckLossTimeoutScatterSkipsFlowsWithoutIndications) {
  Corpus corpus;
  corpus.add("A", true, make_flow(0.01, 0.004, 0.3, 2, 1, 6, 2.0));
  corpus.add("A", true, make_flow(0.01, 0.002, 0.0, 0, 0, 0, 0.0));  // no indications
  const auto points = corpus.ack_loss_vs_timeout(true);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].first, 0.004);
  EXPECT_NEAR(points[0].second, 0.25, 1e-12);
}

TEST(CorpusTest, EmptyCorpusHeadlineIsZeroed) {
  Corpus corpus;
  const auto h = corpus.headline();
  EXPECT_EQ(h.flows_highspeed, 0u);
  EXPECT_DOUBLE_EQ(h.spurious_timeout_share, 0.0);
  EXPECT_DOUBLE_EQ(h.mean_recovery_s_highspeed, 0.0);
}

}  // namespace
}  // namespace hsr::analysis
