// Jain's index, fairness reports and burst-window goodput shares — computed
// from FlowCaptures alone, so synthetic captures pin the arithmetic and a
// real multi-flow run pins the wiring.
#include "analysis/fairness.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "radio/profiles.h"
#include "trace/capture.h"
#include "workload/multi_flow.h"

namespace hsr::analysis {
namespace {

using util::Duration;
using util::TimePoint;

TEST(JainIndexTest, EqualSharesScoreOne) {
  EXPECT_DOUBLE_EQ(jain_index({4.0, 4.0, 4.0, 4.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.5}), 1.0);
}

TEST(JainIndexTest, OneHogScoresOneOverN) {
  EXPECT_DOUBLE_EQ(jain_index({9.0, 0.0, 0.0}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0, 0.0, 7.0, 0.0}), 1.0 / 5.0);
}

TEST(JainIndexTest, HandComputedMixedCase) {
  // x = {1, 2, 3}: (1+2+3)^2 / (3 * (1+4+9)) = 36 / 42.
  EXPECT_DOUBLE_EQ(jain_index({1.0, 2.0, 3.0}), 36.0 / 42.0);
}

TEST(JainIndexTest, DegenerateInputsReportOne) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
}

// A capture with `delivered` delivered data segments at one-second spacing,
// plus `retx` retransmitted (delivered) segments, for share arithmetic.
trace::FlowCapture synthetic_capture(net::FlowId flow, unsigned delivered,
                                     unsigned retx) {
  trace::FlowCapture c;
  c.flow = flow;
  std::uint64_t id = 0;
  for (unsigned i = 0; i < delivered + retx; ++i) {
    net::Packet p;
    p.id = ++id;  // ids are per-capture join keys; dense from 1
    p.flow = flow;
    p.kind = net::PacketKind::kData;
    p.seq = i + 1;
    p.size_bytes = 1400;
    p.is_retransmission = i >= delivered;
    const TimePoint sent = TimePoint::from_seconds(static_cast<double>(i));
    c.data.on_send(p, sent);
    c.data.on_deliver(p, sent, sent + Duration::millis(50));
  }
  return c;
}

TEST(FairnessReportTest, SharesRetransmissionsAndJainFromSyntheticCaptures) {
  std::vector<trace::FlowCapture> captures;
  captures.push_back(synthetic_capture(1, 30, 0));
  captures.push_back(synthetic_capture(2, 10, 5));

  const FairnessReport report =
      fairness_report(captures, Duration::seconds(10));
  ASSERT_EQ(report.flows.size(), 2u);

  // Goodput counts UNIQUE segments (retransmissions carry new seqs here, so
  // they all count as distinct deliveries) normalized by the duration.
  EXPECT_DOUBLE_EQ(report.flows[0].goodput_pps, 3.0);
  EXPECT_DOUBLE_EQ(report.flows[1].goodput_pps, 1.5);
  EXPECT_DOUBLE_EQ(report.flows[0].goodput_share, 3.0 / 4.5);
  EXPECT_DOUBLE_EQ(report.flows[1].goodput_share, 1.5 / 4.5);

  EXPECT_EQ(report.flows[0].retransmissions, 0u);
  EXPECT_EQ(report.flows[1].retransmissions, 5u);
  EXPECT_DOUBLE_EQ(report.flows[1].retransmission_rate, 5.0 / 15.0);

  EXPECT_EQ(report.aggregate_data_sent, 45u);
  EXPECT_EQ(report.aggregate_retransmissions, 5u);
  EXPECT_DOUBLE_EQ(report.aggregate_retransmission_rate, 5.0 / 45.0);
  EXPECT_DOUBLE_EQ(report.jain, jain_index({3.0, 1.5}));
  EXPECT_LT(report.jain, 1.0);
}

TEST(FairnessReportTest, ZeroDurationUsesLongestCaptureSpan) {
  std::vector<trace::FlowCapture> captures;
  captures.push_back(synthetic_capture(1, 5, 0));   // spans ~4 s
  captures.push_back(synthetic_capture(2, 21, 0));  // spans ~20 s
  const FairnessReport by_span = fairness_report(captures);
  const FairnessReport by_duration =
      fairness_report(captures, captures[1].span());
  ASSERT_EQ(by_span.flows.size(), 2u);
  EXPECT_DOUBLE_EQ(by_span.flows[0].goodput_pps,
                   by_duration.flows[0].goodput_pps);
  EXPECT_DOUBLE_EQ(by_span.flows[1].goodput_pps,
                   by_duration.flows[1].goodput_pps);
}

TEST(DeliveredSharesTest, CountsOnlyArrivalsInsideTheWindow) {
  std::vector<trace::FlowCapture> captures;
  captures.push_back(synthetic_capture(1, 10, 0));  // arrivals at i + 0.05 s
  captures.push_back(synthetic_capture(2, 4, 0));

  // [2, 6) catches arrivals 2.05, 3.05, 4.05, 5.05 of flow 1 and 2.05, 3.05
  // of flow 2.
  const auto shares = delivered_shares(captures, TimePoint::from_seconds(2.0),
                                       TimePoint::from_seconds(6.0));
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0].delivered, 4u);
  EXPECT_EQ(shares[1].delivered, 2u);
  EXPECT_DOUBLE_EQ(shares[0].share, 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(shares[1].share, 2.0 / 6.0);
}

TEST(DeliveredSharesTest, EmptyWindowReportsZeros) {
  std::vector<trace::FlowCapture> captures;
  captures.push_back(synthetic_capture(1, 3, 0));
  const auto shares = delivered_shares(captures, TimePoint::from_seconds(100.0),
                                       TimePoint::from_seconds(101.0));
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0].delivered, 0u);
  EXPECT_DOUBLE_EQ(shares[0].share, 0.0);
}

TEST(FairnessReportTest, RealMultiFlowScenarioIsPlausiblyFair) {
  workload::MultiFlowSpec spec;
  spec.profile = radio::telecom_3g_highspeed();
  spec.flows = 4;
  spec.duration = Duration::seconds(8);
  spec.seed = 12;
  workload::MultiFlowResult r = workload::run_multi_flow(spec);
  ASSERT_TRUE(r.status.is_ok());
  const FairnessReport report = fairness_report(r.captures, spec.duration);
  ASSERT_EQ(report.flows.size(), 4u);
  EXPECT_GE(report.jain, 0.25 - 1e-12);
  EXPECT_LE(report.jain, 1.0 + 1e-12);
  EXPECT_GT(report.aggregate_goodput_pps, 0.0);
  double share_sum = 0.0;
  for (const auto& f : report.flows) {
    share_sum += f.goodput_share;
    // The report's goodput matches the simulator's ground truth per flow.
    EXPECT_NEAR(f.goodput_pps, r.flows[f.flow - 1].goodput_pps, 1e-9);
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace hsr::analysis
