#include "analysis/flow_analysis.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/channel.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace hsr::analysis {
namespace {

using trace::FlowCapture;
using util::Duration;
using util::TimePoint;

// Builder for hand-crafted captures: the methodology must reconstruct
// timeout structure from packet records alone, so these tests write the
// exact wire history the classifier sees.
class CaptureBuilder {
 public:
  // Sends a data segment; arrived_ms < 0 means lost.
  CaptureBuilder& data(SeqNo seq, double sent_ms, double arrived_ms) {
    net::Packet p;
    p.id = next_id_++;
    p.kind = net::PacketKind::kData;
    p.seq = seq;
    p.size_bytes = 1400;
    const TimePoint sent = at(sent_ms);
    cap_.data.on_send(p, sent);
    if (arrived_ms >= 0) {
      cap_.data.on_deliver(p, sent, at(arrived_ms));
    } else {
      cap_.data.on_drop(p, sent, net::DropCause::bernoulli());
    }
    return *this;
  }

  // Sends an ACK; arrived_ms < 0 means lost.
  CaptureBuilder& ack(SeqNo ack_next, double sent_ms, double arrived_ms) {
    net::Packet p;
    p.id = next_id_++;
    p.kind = net::PacketKind::kAck;
    p.ack_next = ack_next;
    p.size_bytes = 52;
    const TimePoint sent = at(sent_ms);
    cap_.acks.on_send(p, sent);
    if (arrived_ms >= 0) {
      cap_.acks.on_deliver(p, sent, at(arrived_ms));
    } else {
      cap_.acks.on_drop(p, sent, net::DropCause::bernoulli());
    }
    return *this;
  }

  const FlowCapture& capture() const { return cap_; }

 private:
  static TimePoint at(double ms) {
    return TimePoint::zero() + Duration::from_seconds(ms / 1000.0);
  }
  FlowCapture cap_;
  std::uint64_t next_id_ = 1;
};

TEST(ClassificationTest, TimerDrivenResendIsRto) {
  CaptureBuilder b;
  b.data(1, 0.0, -1)        // original lost
      .data(1, 1000.0, 30.0 + 1000.0)  // silent re-send after 1 s: RTO
      .ack(2, 1035.0, 1065.0);
  const auto rto = find_rto_retransmissions(b.capture());
  ASSERT_EQ(rto.size(), 1u);
  EXPECT_EQ(rto[0], 1u);  // second data transmission
  EXPECT_EQ(count_fast_retransmissions(b.capture()), 0u);
}

TEST(ClassificationTest, DupAckDrivenResendIsFastRetransmit) {
  CaptureBuilder b;
  // Window 1..5 sent; seq 1 lost; 2..5 delivered -> four dup ACKs for 1.
  b.data(1, 0.0, -1);
  for (int i = 2; i <= 5; ++i) {
    b.data(i, i - 1.0, 30.0 + i);
  }
  b.ack(1, 33.0, 63.0).ack(1, 34.0, 64.0).ack(1, 35.0, 65.0);
  // Fast retransmit fires exactly at the 3rd dup ACK's arrival.
  b.data(1, 65.0, 95.0);
  b.ack(6, 96.0, 126.0);
  EXPECT_EQ(count_fast_retransmissions(b.capture()), 1u);
  EXPECT_TRUE(find_rto_retransmissions(b.capture()).empty());
}

TEST(ClassificationTest, AckDrivenResendWithFewDupAcksIsNotFastRetx) {
  // Go-back-N slow-start resend: re-send of 2 immediately after a cumulative
  // ACK arrival, with fewer than 3 dup ACKs for it.
  CaptureBuilder b;
  b.data(1, 0.0, -1)
      .data(2, 1.0, -1)
      .data(1, 1000.0, 1030.0)   // RTO retx of 1
      .ack(2, 1032.0, 1062.0)    // recovery ACK for 1
      .data(2, 1062.0, 1092.0)   // go-back-N resend of 2, ACK-driven
      .ack(3, 1094.0, 1124.0);
  EXPECT_EQ(count_fast_retransmissions(b.capture()), 0u);
  const auto rto = find_rto_retransmissions(b.capture());
  ASSERT_EQ(rto.size(), 1u);  // only the retx of seq 1
  const FlowAnalysis a = analyze_flow(b.capture());
  ASSERT_EQ(a.timeout_sequences.size(), 1u);
  EXPECT_EQ(a.timeout_sequences[0].seq, 1u);
}

TEST(TimeoutSequenceTest, GenuineDataLossTimeout) {
  CaptureBuilder b;
  b.data(1, 0.0, -1)
      .data(1, 1000.0, 1030.0)
      .ack(2, 1032.0, 1062.0);
  const FlowAnalysis a = analyze_flow(b.capture());
  ASSERT_EQ(a.timeout_sequences.size(), 1u);
  const TimeoutSequence& ts = a.timeout_sequences[0];
  EXPECT_FALSE(ts.spurious);
  EXPECT_EQ(ts.num_timeouts, 1u);
  EXPECT_EQ(ts.retx_lost, 0u);
  EXPECT_TRUE(ts.recovered_observed);
  // Recovery: from the original send (CA end, t=0) to the ACK arrival.
  EXPECT_NEAR(ts.duration().to_seconds(), 1.062, 1e-9);
}

TEST(TimeoutSequenceTest, SpuriousTimeoutDetectedViaDeliveredOriginal) {
  CaptureBuilder b;
  // Original DELIVERED but its ACK was lost: the paper's spurious RTO.
  b.data(1, 0.0, 30.0)
      .ack(2, 31.0, -1)          // ACK lost
      .data(1, 1000.0, 1030.0)   // silent retransmission
      .ack(2, 1031.0, 1061.0);
  const FlowAnalysis a = analyze_flow(b.capture());
  ASSERT_EQ(a.timeout_sequences.size(), 1u);
  EXPECT_TRUE(a.timeout_sequences[0].spurious);
  EXPECT_DOUBLE_EQ(a.spurious_fraction, 1.0);
}

TEST(TimeoutSequenceTest, ConsecutiveTimeoutsWithBackoff) {
  CaptureBuilder b;
  b.data(1, 0.0, -1)
      .data(1, 1000.0, -1)       // first RTO retx, lost
      .data(1, 3000.0, 3030.0)   // second retx after 2T backoff
      .ack(2, 3032.0, 3062.0);
  const FlowAnalysis a = analyze_flow(b.capture());
  ASSERT_EQ(a.timeout_sequences.size(), 1u);
  const TimeoutSequence& ts = a.timeout_sequences[0];
  EXPECT_EQ(ts.num_timeouts, 2u);
  EXPECT_EQ(ts.retx_lost, 1u);
  EXPECT_DOUBLE_EQ(ts.retx_loss_rate(), 0.5);
  // backoff gap = 2 s => T = 1 s.
  EXPECT_NEAR(ts.backoff_gap.to_seconds(), 2.0, 1e-9);
  EXPECT_NEAR(a.mean_first_rto.to_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(a.recovery_retx_loss_rate, 0.5, 1e-12);
}

TEST(TimeoutSequenceTest, TraceTruncatedMidRecovery) {
  CaptureBuilder b;
  b.data(1, 0.0, -1).data(1, 1000.0, -1);  // never recovers
  const FlowAnalysis a = analyze_flow(b.capture());
  ASSERT_EQ(a.timeout_sequences.size(), 1u);
  EXPECT_FALSE(a.timeout_sequences[0].recovered_observed);
}

TEST(TimeoutSequenceTest, TwoIndependentSequences) {
  CaptureBuilder b;
  b.data(1, 0.0, -1)
      .data(1, 1000.0, 1030.0)
      .ack(2, 1032.0, 1062.0)
      .data(2, 1062.0, 1092.0)
      .ack(3, 1094.0, 1124.0)
      .data(3, 1124.0, -1)
      .data(3, 2500.0, 2530.0)
      .ack(4, 2532.0, 2562.0);
  const FlowAnalysis a = analyze_flow(b.capture());
  ASSERT_EQ(a.timeout_sequences.size(), 2u);
  EXPECT_EQ(a.timeout_sequences[0].seq, 1u);
  EXPECT_EQ(a.timeout_sequences[1].seq, 3u);
  EXPECT_EQ(a.loss_indications, 2u);
  EXPECT_DOUBLE_EQ(a.timeout_probability, 1.0);
}

TEST(LossRateTest, FirstTransmissionVsAllTransmissions) {
  CaptureBuilder b;
  b.data(1, 0.0, -1)          // first tx of 1: lost
      .data(2, 1.0, 31.0)     // first tx of 2: ok
      .data(1, 1000.0, -1)    // retx of 1: lost (counts only in all-tx rate)
      .data(1, 3000.0, 3030.0)
      .ack(2, 3032.0, 3062.0);
  const FlowAnalysis a = analyze_flow(b.capture());
  EXPECT_DOUBLE_EQ(a.first_tx_loss_rate, 0.5);   // 1 of 2 firsts lost
  EXPECT_DOUBLE_EQ(a.data_loss_rate, 0.5);       // 2 of 4 transmissions lost
  EXPECT_EQ(a.first_transmissions, 2u);
}

TEST(LossRateTest, EventRatesSplitSpuriousFromData) {
  CaptureBuilder b;
  // One spurious timeout + one genuine data-loss timeout across 4 segments.
  b.data(1, 0.0, 30.0)
      .ack(2, 31.0, -1)
      .data(1, 1000.0, 1030.0)  // spurious RTO
      .ack(2, 1031.0, 1061.0)
      .data(2, 1061.0, 1091.0)
      .ack(3, 1093.0, 1123.0)
      .data(3, 1123.0, -1)
      .data(3, 2500.0, 2530.0)  // genuine RTO
      .ack(4, 2532.0, 2562.0)
      .data(4, 2562.0, 2592.0)
      .ack(5, 2594.0, 2624.0);
  const FlowAnalysis a = analyze_flow(b.capture());
  ASSERT_EQ(a.timeout_sequences.size(), 2u);
  EXPECT_EQ(a.loss_indications, 2u);
  // 4 first transmissions; all indications = 2/4; data-only = 1/4.
  EXPECT_DOUBLE_EQ(a.loss_event_rate_all, 0.5);
  EXPECT_DOUBLE_EQ(a.loss_event_rate_data, 0.25);
  EXPECT_DOUBLE_EQ(a.spurious_fraction, 0.5);
  EXPECT_GT(a.ack_burst_loss_episode, 0.0);
  EXPECT_LT(a.ack_burst_loss_episode, 1.0);
}

TEST(AckBurstTest, RoundEstimatorCountsAllLostRounds) {
  CaptureBuilder b;
  // Give the flow a well-defined RTT of ~60 ms via one delivered data+ack.
  b.data(1, 0.0, 30.0).ack(2, 30.0, 60.0);
  const Duration rtt = Duration::millis(60);
  // Round 1 (anchored at first ACK send, 30 ms): the ACK above survives.
  // A later round (anchored at 30 ms, 60 ms wide) where both ACKs die:
  b.ack(2, 212.0, -1).ack(2, 222.0, -1);
  // And a round where one of two survives:
  b.ack(3, 392.0, 422.0).ack(4, 402.0, -1);
  const double burst = estimate_ack_burst_loss(b.capture(), rtt);
  EXPECT_NEAR(burst, 1.0 / 3.0, 1e-9);
}

TEST(AckBurstTest, ZeroWhenNoAcksLost) {
  CaptureBuilder b;
  b.data(1, 0.0, 30.0).ack(2, 30.0, 60.0).ack(3, 90.0, 120.0);
  EXPECT_DOUBLE_EQ(estimate_ack_burst_loss(b.capture(), Duration::millis(60)), 0.0);
}

TEST(GoodputTest, BasicRates) {
  CaptureBuilder b;
  b.data(1, 0.0, 30.0)
      .data(2, 10.0, 40.0)
      .data(3, 20.0, 50.0)
      .ack(4, 52.0, 82.0);
  const FlowAnalysis a = analyze_flow(b.capture());
  EXPECT_EQ(a.unique_segments, 3u);
  EXPECT_NEAR(a.span.to_seconds(), 0.082, 1e-9);
  EXPECT_NEAR(a.goodput_pps, 3.0 / 0.082, 1e-6);
  EXPECT_NEAR(a.mean_rtt.to_seconds(), 0.060, 1e-9);
}

TEST(EmptyFlowTest, AnalyzeEmptyCaptureIsSafe) {
  trace::FlowCapture empty;
  const FlowAnalysis a = analyze_flow(empty);
  EXPECT_EQ(a.unique_segments, 0u);
  EXPECT_FALSE(a.has_timeouts());
  EXPECT_DOUBLE_EQ(a.timeout_probability, 0.0);
  EXPECT_DOUBLE_EQ(a.spurious_fraction, 0.0);
}

TEST(GroundTruthAgreementTest, TimeoutCountMatchesStackEvents) {
  // Run a real flow whose ACK path dies for 3 seconds; the trace pipeline
  // must reconstruct the same number of RTO events the stack logged, and
  // classify them as spurious (all data arrived).
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.tcp.receiver_window = 64;
  cfg.downlink.rate_bps = 10e6;
  cfg.downlink.prop_delay = Duration::millis(20);
  cfg.uplink.rate_bps = 10e6;
  cfg.uplink.prop_delay = Duration::millis(20);
  auto blackout = std::make_unique<net::FunctionalChannel>(
      [](const net::Packet&, TimePoint now) {
        return (now >= TimePoint::from_seconds(5.0) &&
                now < TimePoint::from_seconds(8.0))
                   ? 1.0
                   : 0.0;
      },
      [](const net::Packet&, TimePoint) { return Duration::zero(); },
      util::Rng(1));
  tcp::Connection conn(sim, 1, cfg, std::make_unique<net::PerfectChannel>(),
                       std::move(blackout));
  trace::FlowCapture cap;
  conn.set_downlink_tap(&cap.data);
  conn.set_uplink_tap(&cap.acks);
  conn.start();
  sim.run_until(TimePoint::from_seconds(20));

  const FlowAnalysis a = analyze_flow(cap);
  unsigned analyzed_timeouts = 0;
  for (const auto& ts : a.timeout_sequences) analyzed_timeouts += ts.num_timeouts;
  EXPECT_EQ(analyzed_timeouts, conn.sender().stats().timeouts);
  ASSERT_GE(a.timeout_sequences.size(), 1u);
  for (const auto& ts : a.timeout_sequences) {
    EXPECT_TRUE(ts.spurious);  // data path was perfect throughout
  }
}

}  // namespace
}  // namespace hsr::analysis
