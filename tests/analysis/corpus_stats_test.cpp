// CorpusStats: the online accumulators must reproduce Corpus::headline()
// BITWISE when absorbed in entry order, serialize to a digest that parses
// back to the identical accumulators, and merge counters exactly.
#include "analysis/corpus_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "workload/dataset.h"

namespace hsr::analysis {
namespace {

// A small but non-trivial campaign: high-speed + stationary flows, enough
// timeouts for the recovery and q-hat accumulators to see real samples.
const workload::DatasetResult& dataset() {
  static const workload::DatasetResult result = [] {
    workload::DatasetSpec spec = workload::DatasetSpec::paper_table1(0.02);
    spec.flow_duration_min = util::Duration::seconds(20);
    spec.flow_duration_max = util::Duration::seconds(30);
    spec.threads = 1;
    return workload::generate_dataset(spec);
  }();
  return result;
}

TEST(CorpusStatsTest, HeadlineIsBitwiseEqualToInMemoryCorpus) {
  const auto& ds = dataset();
  ASSERT_TRUE(ds.complete());
  ASSERT_GT(ds.flows.size(), 4u);

  const Corpus::Headline from_corpus = ds.corpus.headline();
  const Corpus::Headline from_stats = ds.stats.headline();

  // Bitwise, not approximate: the absorb order mirrors the corpus's own
  // accumulation order, so every double must match exactly (EXPECT_EQ on
  // doubles is exact equality).
  EXPECT_EQ(from_corpus.mean_recovery_s_highspeed, from_stats.mean_recovery_s_highspeed);
  EXPECT_EQ(from_corpus.mean_recovery_s_stationary, from_stats.mean_recovery_s_stationary);
  EXPECT_EQ(from_corpus.spurious_timeout_share, from_stats.spurious_timeout_share);
  EXPECT_EQ(from_corpus.mean_ack_loss_highspeed, from_stats.mean_ack_loss_highspeed);
  EXPECT_EQ(from_corpus.mean_ack_loss_stationary, from_stats.mean_ack_loss_stationary);
  EXPECT_EQ(from_corpus.mean_data_loss_highspeed, from_stats.mean_data_loss_highspeed);
  EXPECT_EQ(from_corpus.mean_recovery_loss_highspeed,
            from_stats.mean_recovery_loss_highspeed);
  EXPECT_EQ(from_corpus.flows_highspeed, from_stats.flows_highspeed);
  EXPECT_EQ(from_corpus.flows_stationary, from_stats.flows_stationary);
  EXPECT_EQ(from_corpus.timeout_sequences_highspeed,
            from_stats.timeout_sequences_highspeed);
}

TEST(CorpusStatsTest, TextDigestRoundTripsBitwise) {
  const auto& ds = dataset();
  const std::string digest = ds.stats.to_text();
  ASSERT_FALSE(digest.empty());
  EXPECT_EQ(digest.rfind("hsrcorpusstats-v1", 0), 0u) << digest.substr(0, 40);

  const auto parsed = CorpusStats::parse(digest);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  // The digest is the comparison key two corpus paths are judged by, so
  // parse(to_text()) must be a fixed point.
  EXPECT_EQ(parsed.value().to_text(), digest);
  EXPECT_EQ(parsed.value().flows(), ds.stats.flows());
  EXPECT_EQ(parsed.value().bytes_captured(), ds.stats.bytes_captured());
}

TEST(CorpusStatsTest, ParseRejectsMalformedDigests) {
  EXPECT_FALSE(CorpusStats::parse("").is_ok());
  EXPECT_FALSE(CorpusStats::parse("not-a-digest\n").is_ok());
  // Damage one token of a valid digest.
  std::string digest = dataset().stats.to_text();
  digest.replace(digest.find("stat recovery_hs"), 16, "stat recovery_xx");
  EXPECT_FALSE(CorpusStats::parse(digest).is_ok());
}

TEST(CorpusStatsTest, MergeCombinesCountersExactly) {
  const auto& ds = dataset();
  ASSERT_GT(ds.flows.size(), 4u);

  // Rebuild two partial stats from the same flows, split down the middle,
  // then merge.
  CorpusStats left;
  CorpusStats right;
  const std::size_t half = ds.flows.size() / 2;
  for (std::size_t i = 0; i < ds.flows.size(); ++i) {
    const auto& rec = ds.flows[i];
    const FlowStatsSample sample = FlowStatsSample::from_flow(
        rec.analysis, rec.breakdown, rec.high_speed, rec.bytes_captured);
    (i < half ? left : right).absorb(sample);
  }
  left.merge(right);

  EXPECT_EQ(left.flows(), ds.stats.flows());
  EXPECT_EQ(left.flows_highspeed(), ds.stats.flows_highspeed());
  EXPECT_EQ(left.flows_stationary(), ds.stats.flows_stationary());
  EXPECT_EQ(left.bytes_captured(), ds.stats.bytes_captured());
  EXPECT_EQ(left.loss_totals().data_lost, ds.stats.loss_totals().data_lost);
  EXPECT_EQ(left.loss_totals().ack_lost, ds.stats.loss_totals().ack_lost);
  EXPECT_EQ(left.loss_totals().scripted_drops, ds.stats.loss_totals().scripted_drops);

  // Floating-point moments combine to full precision (Chan), though not
  // bitwise: compare with a tight relative tolerance.
  const auto close = [](double a, double b) {
    const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
    return std::fabs(a - b) / scale < 1e-9;
  };
  EXPECT_TRUE(close(left.goodput_pps(true).mean(), ds.stats.goodput_pps(true).mean()));
  EXPECT_TRUE(close(left.goodput_pps(true).m2(), ds.stats.goodput_pps(true).m2()));
  EXPECT_EQ(left.goodput_pps(true).count(), ds.stats.goodput_pps(true).count());
  EXPECT_EQ(left.ack_loss(true).min(), ds.stats.ack_loss(true).min());
  EXPECT_EQ(left.ack_loss(true).max(), ds.stats.ack_loss(true).max());
}

TEST(CorpusStatsTest, SaveLoadRoundTripsAtomically) {
  const std::string path = "corpus_stats_test_digest.txt";
  const auto& stats = dataset().stats;
  ASSERT_TRUE(save_corpus_stats(path, stats).is_ok());
  // No temp file left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());

  const auto loaded = load_corpus_stats(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().to_text(), stats.to_text());
  std::remove(path.c_str());

  EXPECT_FALSE(load_corpus_stats("no_such_digest_file.txt").is_ok());
}

}  // namespace
}  // namespace hsr::analysis
