#include "util/status.h"

#include <gtest/gtest.h>

namespace hsr::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::invalid_argument("bad p");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad p");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad p");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::out_of_range("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::failed_precondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::resource_exhausted("x").code(), StatusCode::kResourceExhausted);
}

TEST(StatusCodeNameTest, AllNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::not_found("missing"));
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOnErrorThrows) {
  StatusOr<int> v(Status::internal("boom"));
  EXPECT_THROW((void)v.value(), std::runtime_error);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(*v.value(), 7);
}

}  // namespace
}  // namespace hsr::util
