// The util::Fs seam: the production backend must honor the WritableFile
// contract, write_file_atomic must never leave a destination in a torn
// state, and retry_transient must be attempt-counted (no clocks involved).
#include "util/fs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace hsr::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(FsTest, RealBackendWritesSyncsAndCloses) {
  Fs& fs = Fs::real();
  const std::string path = "fs_test_real_write.txt";
  auto file = fs.open_for_write(path);
  ASSERT_TRUE(file.is_ok()) << file.status().to_string();
  ASSERT_TRUE(file.value()->append("hello ").is_ok());
  ASSERT_TRUE(file.value()->append("seam").is_ok());
  ASSERT_TRUE(file.value()->sync().is_ok());
  ASSERT_TRUE(file.value()->close().is_ok());

  EXPECT_TRUE(fs.exists(path));
  const auto size = fs.file_size(path);
  ASSERT_TRUE(size.is_ok());
  EXPECT_EQ(size.value(), 10u);
  EXPECT_EQ(read_file(path), "hello seam");
  ASSERT_TRUE(fs.remove_file(path).is_ok());
  EXPECT_FALSE(fs.exists(path));
}

TEST(FsTest, RemoveIsIdempotentAndRenameReplaces) {
  Fs& fs = Fs::real();
  // Removing what does not exist is OK (cleanup paths are re-runnable).
  EXPECT_TRUE(fs.remove_file("fs_test_never_existed.txt").is_ok());
  EXPECT_TRUE(fs.remove_all("fs_test_never_existed_dir").is_ok());

  const std::string a = "fs_test_rename_a.txt";
  const std::string b = "fs_test_rename_b.txt";
  ASSERT_TRUE(write_file_atomic(fs, a, "new").is_ok());
  ASSERT_TRUE(write_file_atomic(fs, b, "old").is_ok());
  // POSIX rename semantics: the destination is replaced atomically.
  ASSERT_TRUE(fs.rename_file(a, b).is_ok());
  EXPECT_FALSE(fs.exists(a));
  EXPECT_EQ(read_file(b), "new");
  ASSERT_TRUE(fs.remove_file(b).is_ok());
}

TEST(FsTest, CreateDirectoriesAndRemoveAll) {
  Fs& fs = Fs::real();
  const std::string dir = "fs_test_tree/nested/deep";
  ASSERT_TRUE(fs.create_directories(dir).is_ok());
  ASSERT_TRUE(fs.create_directories(dir).is_ok());  // idempotent
  ASSERT_TRUE(write_file_atomic(fs, dir + "/leaf.txt", "x").is_ok());
  ASSERT_TRUE(fs.remove_all("fs_test_tree").is_ok());
  EXPECT_FALSE(fs.exists("fs_test_tree"));
}

TEST(FsTest, TruncateShortensAFile) {
  Fs& fs = Fs::real();
  const std::string path = "fs_test_truncate.txt";
  ASSERT_TRUE(write_file_atomic(fs, path, "0123456789").is_ok());
  ASSERT_TRUE(fs.truncate_file(path, 4).is_ok());
  EXPECT_EQ(read_file(path), "0123");
  ASSERT_TRUE(fs.remove_file(path).is_ok());
}

TEST(FsTest, WriteFileAtomicReplacesAndLeavesNoTmp) {
  Fs& fs = Fs::real();
  const std::string path = "fs_test_atomic.txt";
  ASSERT_TRUE(write_file_atomic(fs, path, "first").is_ok());
  EXPECT_EQ(read_file(path), "first");
  ASSERT_TRUE(write_file_atomic(fs, path, "second").is_ok());
  EXPECT_EQ(read_file(path), "second");
  EXPECT_FALSE(fs.exists(path + ".tmp"));
  ASSERT_TRUE(fs.remove_file(path).is_ok());
}

TEST(FsTest, RetryTransientIsAttemptCounted) {
  // Heals within the budget: total attempts = failures + 1.
  int calls = 0;
  Status healed = retry_transient([&calls]() {
    ++calls;
    if (calls < 3) return Status::unavailable("transient");
    return Status();
  });
  EXPECT_TRUE(healed.is_ok());
  EXPECT_EQ(calls, 3);

  // A non-transient failure is returned immediately, not retried.
  calls = 0;
  Status hard = retry_transient([&calls]() {
    ++calls;
    return Status::internal("broken");
  });
  EXPECT_EQ(hard.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);

  // The budget bounds the attempts; the last transient status comes back.
  calls = 0;
  Status exhausted = retry_transient([&calls]() {
    ++calls;
    return Status::unavailable("still down");
  });
  EXPECT_EQ(exhausted.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, kTransientRetryAttempts);
}

}  // namespace
}  // namespace hsr::util
