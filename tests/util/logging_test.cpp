#include "util/logging.h"

#include <gtest/gtest.h>

namespace hsr::util {
namespace {

TEST(LoggingTest, ThresholdRoundTrip) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  set_log_threshold(before);
}

TEST(LoggingTest, SuppressedLevelsDoNotCrash) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kOff);
  HSR_LOG(kDebug) << "invisible " << 1;
  HSR_LOG(kError) << "also invisible " << 2.5;
  set_log_threshold(before);
}

TEST(LoggingTest, EnabledLevelsDoNotCrash) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  HSR_LOG(kInfo) << "hello " << 42;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("hello 42"), std::string::npos);
  EXPECT_NE(err.find("INFO"), std::string::npos);
  set_log_threshold(before);
}

TEST(CheckTest, PassingCheckIsSilent) {
  HSR_CHECK(1 + 1 == 2);
  HSR_CHECK_MSG(true, "never shown");
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ HSR_CHECK(false); }, "CHECK failed");
  EXPECT_DEATH({ HSR_CHECK_MSG(false, "ctx"); }, "ctx");
}

}  // namespace
}  // namespace hsr::util
