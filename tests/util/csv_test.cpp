#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hsr::util {
namespace {

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesFieldsWithCommas) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"x,y", "z"});
  EXPECT_EQ(os.str(), "\"x,y\",z\n");
}

TEST(CsvWriterTest, EscapesEmbeddedQuotes) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"say \"hi\""});
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriterTest, QuotesNewlines) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"two\nlines", "ok"});
  EXPECT_EQ(os.str(), "\"two\nlines\",ok\n");
}

TEST(CsvWriterTest, HeterogeneousRowHelper) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("flow", 42, 2.5, 'x');
  EXPECT_EQ(os.str(), "flow,42,2.5,x\n");
}

TEST(CsvWriterTest, EmptyFields) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"", "", ""});
  EXPECT_EQ(os.str(), ",,\n");
}

TEST(CsvWriterTest, MultipleRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row(1, 2);
  w.row(3, 4);
  EXPECT_EQ(os.str(), "1,2\n3,4\n");
}

}  // namespace
}  // namespace hsr::util
