#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hsr::util {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(ResolveThreadCountTest, ExplicitCountPassesThrough) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_EQ(resolve_thread_count(8), 8u);
}

TEST(ThreadPoolTest, PoolOfOneSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, EachIndexRunsExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::uint64_t kN = 1000;  // more tasks than threads
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::uint64_t i) { hits[i].fetch_add(1); });
    for (std::uint64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ResultsByIndexMatchSequential) {
  constexpr std::uint64_t kN = 257;
  std::vector<std::uint64_t> expected(kN);
  for (std::uint64_t i = 0; i < kN; ++i) expected[i] = i * i + 7;

  ThreadPool pool(4);
  std::vector<std::uint64_t> got(kN, 0);
  pool.parallel_for(kN, [&](std::uint64_t i) { got[i] = i * i + 7; });
  EXPECT_EQ(got, expected);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(10, [&](std::uint64_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 55u) << "round " << round;
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::uint64_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a failed job and keeps working.
  std::atomic<int> calls{0};
  pool.parallel_for(5, [&](std::uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 5);
}

TEST(ThreadPoolTest, ExceptionOnPoolOfOnePropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   3, [&](std::uint64_t) { throw std::runtime_error("seq"); }),
               std::runtime_error);
}

TEST(ThreadPoolTest, FreeFunctionParallelFor) {
  std::vector<std::uint64_t> got(64, 0);
  parallel_for(4, got.size(), [&](std::uint64_t i) { got[i] = i; });
  std::vector<std::uint64_t> expected(64);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace hsr::util
