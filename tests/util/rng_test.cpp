#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace hsr::util {
namespace {

TEST(SplitMix64Test, KnownNonTrivialOutputs) {
  // Distinct inputs map to distinct, well-mixed outputs.
  EXPECT_NE(splitmix64(0), 0u);
  EXPECT_NE(splitmix64(1), splitmix64(2));
  EXPECT_NE(splitmix64(1), splitmix64(0));
}

TEST(HashLabelTest, DistinctLabelsDistinctHashes) {
  EXPECT_NE(hash_label("alpha"), hash_label("beta"));
  EXPECT_NE(hash_label(""), hash_label("a"));
  EXPECT_EQ(hash_label("radio"), hash_label("radio"));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform() != b.uniform()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  // Forking yields the same substream regardless of how much the parent
  // has been used: forks derive from the seed, not the engine state.
  Rng parent1(7);
  Rng parent2(7);
  (void)parent2.uniform();
  (void)parent2.uniform();
  Rng c1 = parent1.fork("channel");
  Rng c2 = parent2.fork("channel");
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
  }
}

TEST(RngTest, ForksWithDifferentLabelsDiffer) {
  Rng parent(7);
  Rng a = parent.fork("a");
  Rng b = parent.fork("b");
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(RngTest, IndexedForksDiffer) {
  Rng parent(7);
  Rng f0 = parent.fork("flow", 0);
  Rng f1 = parent.fork("flow", 1);
  EXPECT_NE(f0.uniform(), f1.uniform());
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(3.0, 7.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateMatchesProbability) {
  Rng rng(11);
  const double p = 0.3;
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, ParetoAboveScale) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 3.0), 3.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.3);
}

}  // namespace
}  // namespace hsr::util
