#include "util/time.h"

#include <gtest/gtest.h>

namespace hsr::util {
namespace {

TEST(DurationTest, Constructors) {
  EXPECT_EQ(Duration::nanos(5).ns(), 5);
  EXPECT_EQ(Duration::micros(3).ns(), 3'000);
  EXPECT_EQ(Duration::millis(2).ns(), 2'000'000);
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::zero().ns(), 0);
}

TEST(DurationTest, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Duration::from_seconds(0.1234567891).ns(), 123'456'789);
  EXPECT_EQ(Duration::from_seconds(-0.5).ns(), -500'000'000);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::millis(100);
  const Duration b = Duration::millis(30);
  EXPECT_EQ((a + b).ns(), Duration::millis(130).ns());
  EXPECT_EQ((a - b).ns(), Duration::millis(70).ns());
  EXPECT_EQ((a * 3).ns(), Duration::millis(300).ns());
  EXPECT_EQ((a / 2).ns(), Duration::millis(50).ns());
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = Duration::millis(10);
  d += Duration::millis(5);
  EXPECT_EQ(d, Duration::millis(15));
  d -= Duration::millis(15);
  EXPECT_EQ(d, Duration::zero());
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GT(Duration::seconds(1), Duration::millis(999));
  EXPECT_EQ(Duration::micros(1000), Duration::millis(1));
  EXPECT_LE(Duration::zero(), Duration::zero());
}

TEST(DurationTest, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).to_millis(), 2.5);
}

TEST(DurationTest, ScaledRounds) {
  EXPECT_EQ(Duration::millis(100).scaled(1.5), Duration::millis(150));
  EXPECT_EQ(Duration::nanos(3).scaled(0.5), Duration::nanos(2));  // 1.5 + 0.5 -> 2
}

TEST(TimePointTest, OriginAndOffsets) {
  const TimePoint t0 = TimePoint::zero();
  const TimePoint t1 = t0 + Duration::seconds(2);
  EXPECT_EQ((t1 - t0), Duration::seconds(2));
  EXPECT_EQ((t1 - Duration::seconds(2)), t0);
  EXPECT_EQ(t1.ns(), 2'000'000'000);
}

TEST(TimePointTest, Comparisons) {
  const TimePoint a = TimePoint::from_ns(5);
  const TimePoint b = TimePoint::from_ns(9);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, TimePoint::from_ns(5));
  EXPECT_LT(a, TimePoint::max());
}

TEST(TimePointTest, FromSeconds) {
  EXPECT_EQ(TimePoint::from_seconds(1.25).ns(), 1'250'000'000);
  EXPECT_DOUBLE_EQ(TimePoint::from_seconds(3.5).to_seconds(), 3.5);
}

}  // namespace
}  // namespace hsr::util
