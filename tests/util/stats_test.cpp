#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hsr::util {
namespace {

TEST(RunningStatsTest, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MeanMinMax) {
  RunningStats s;
  for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.8);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 14.0);
}

TEST(RunningStatsTest, VarianceMatchesDirectFormula) {
  RunningStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.add(x);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(EmpiricalCdfTest, EmptyQueries) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
}

TEST(EmpiricalCdfTest, CdfValues) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(100.0), 1.0);
}

TEST(EmpiricalCdfTest, QuantileInterpolates) {
  EmpiricalCdf cdf({0.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 5.0);
}

TEST(EmpiricalCdfTest, AddThenQuery) {
  EmpiricalCdf cdf;
  for (double x : {5.0, 1.0, 3.0}) cdf.add(x);
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 3.0);
}

TEST(EmpiricalCdfTest, CurveIsMonotone) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 500; ++i) cdf.add(std::fmod(i * 37.0, 101.0));
  auto curve = cdf.curve(50);
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(HistogramTest, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.99);  // bucket 4
  h.add(-3.0);  // clamps to bucket 0
  h.add(15.0);  // clamps to bucket 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(1), 4.0);
}

TEST(HistogramTest, RenderProducesOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  const std::string out = h.render(10);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(CorrelationTest, PerfectPositiveAndNegative) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, zs), -1.0, 1e-12);
}

TEST(CorrelationTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(pearson_correlation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation({1, 2}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation({5, 5, 5}, {1, 2, 3}), 0.0);  // zero variance
}

TEST(LinearFitTest, RecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 0.5 * i);
  }
  const auto [a, b] = linear_fit(xs, ys);
  EXPECT_NEAR(a, 3.0, 1e-9);
  EXPECT_NEAR(b, 0.5, 1e-9);
}

TEST(LinearFitTest, DegenerateReturnsMean) {
  const auto [a, b] = linear_fit({2, 2, 2}, {1, 5, 9});
  EXPECT_DOUBLE_EQ(a, 5.0);
  EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(MeanOfTest, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace hsr::util
