#include "util/inline_function.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace hsr::util {
namespace {

using Fn = InlineFunction<int()>;

TEST(InlineFunctionTest, EmptyAndNullptrStates) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  Fn g(nullptr);
  EXPECT_FALSE(static_cast<bool>(g));
  g = [] { return 7; };
  EXPECT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(), 7);
  g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunctionTest, InvokesWithArgumentsAndReturn) {
  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
  InlineFunction<void(int&)> bump = [](int& x) { ++x; };
  int v = 0;
  bump(v);
  bump(v);
  EXPECT_EQ(v, 2);
}

TEST(InlineFunctionTest, MoveOnlyCaptureWorks) {
  // std::function cannot hold this at all; InlineFunction must.
  auto p = std::make_unique<int>(41);
  Fn f = [p = std::move(p)] { return *p + 1; };
  EXPECT_EQ(f(), 42);
  // And it must survive being moved around.
  Fn g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(g(), 42);
}

TEST(InlineFunctionTest, CompileTimeInlineDecision) {
  // A pointer-sized capture is inline; a buffer-busting one is not.
  struct Small {
    void* p;
    int operator()() { return 0; }
  };
  struct Big {
    std::byte blob[Fn::kInlineBytes + 1];
    int operator()() { return 0; }
  };
  static_assert(Fn::holds_inline<Small>());
  static_assert(!Fn::holds_inline<Big>());
  // Throwing-move types may not live inline: slab relocation is noexcept.
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    int operator()() { return 0; }
  };
  static_assert(!Fn::holds_inline<ThrowingMove>());
}

TEST(InlineFunctionTest, OversizedCaptureFallsBackToHeapAndStillWorks) {
  struct Big {
    std::byte blob[Fn::kInlineBytes * 4] = {};
    int tag = 9;
    int operator()() const { return tag; }
  };
  static_assert(!Fn::holds_inline<Big>());
  Fn f = Big{};
  EXPECT_EQ(f(), 9);
  Fn g = std::move(f);
  EXPECT_EQ(g(), 9);
}

TEST(InlineFunctionTest, OverAlignedCaptureFallsBackToAlignedHeap) {
  struct alignas(128) OverAligned {
    int tag = 3;
    int operator()() const {
      // The object really must sit on its extended alignment boundary.
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(this) % 128, 0u);
      return tag;
    }
  };
  static_assert(alignof(OverAligned) > Fn::kInlineAlign);
  static_assert(!Fn::holds_inline<OverAligned>());
  Fn f = OverAligned{};
  EXPECT_EQ(f(), 3);
  Fn g = std::move(f);
  EXPECT_EQ(g(), 3);
}

// Capture that counts its ctor/dtor traffic through external counters.
struct LifeCounters {
  int constructed = 0;
  int destroyed = 0;
  int alive() const { return constructed - destroyed; }
};

template <std::size_t Pad>
struct Tracked {
  explicit Tracked(LifeCounters* c) : counters(c) { ++counters->constructed; }
  Tracked(Tracked&& o) noexcept : counters(o.counters) { ++counters->constructed; }
  Tracked(const Tracked& o) : counters(o.counters) { ++counters->constructed; }
  ~Tracked() { ++counters->destroyed; }
  int operator()() const { return 1; }
  LifeCounters* counters;
  std::byte pad[Pad] = {};
};

TEST(InlineFunctionTest, DestructionCountsBalanceInline) {
  using Small = Tracked<8>;
  static_assert(Fn::holds_inline<Small>());
  LifeCounters c;
  {
    Fn f = Small(&c);
    EXPECT_EQ(c.alive(), 1);
    Fn g = std::move(f);  // relocation constructs one, destroys one
    EXPECT_EQ(c.alive(), 1);
    EXPECT_EQ(g(), 1);
    g = nullptr;  // explicit reset destroys the capture immediately
    EXPECT_EQ(c.alive(), 0);
  }
  EXPECT_EQ(c.constructed, c.destroyed);
}

TEST(InlineFunctionTest, DestructionCountsBalanceHeap) {
  using Big = Tracked<Fn::kInlineBytes * 2>;
  static_assert(!Fn::holds_inline<Big>());
  LifeCounters c;
  {
    Fn f = Big(&c);
    EXPECT_EQ(c.alive(), 1);
    Fn g = std::move(f);  // heap relocation moves the pointer, not the object
    EXPECT_EQ(c.alive(), 1);
    EXPECT_EQ(g(), 1);
  }
  EXPECT_EQ(c.alive(), 0);
  EXPECT_EQ(c.constructed, c.destroyed);
}

TEST(InlineFunctionTest, AssignmentReplacesAndDestroysOldTarget) {
  using Small = Tracked<8>;
  LifeCounters a;
  LifeCounters b;
  Fn f = Small(&a);
  f = Small(&b);  // old capture destroyed, new one installed
  EXPECT_EQ(a.alive(), 0);
  EXPECT_EQ(b.alive(), 1);
  f = nullptr;
  EXPECT_EQ(b.alive(), 0);
}

TEST(InlineFunctionTest, SelfMoveAssignIsSafe) {
  Fn f = [] { return 5; };
  Fn& ref = f;
  f = std::move(ref);
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 5);
}

}  // namespace
}  // namespace hsr::util
