#include "model/padhye.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hsr::model {
namespace {

PathParams path(double rtt = 0.1, double t0 = 0.5, double b = 2, double wm = 1000) {
  return PathParams{rtt, t0, b, wm};
}

TEST(PftkFTest, PolynomialValues) {
  EXPECT_DOUBLE_EQ(pftk_f(0.0), 1.0);
  // f(1) = 1+1+2+4+8+16+32 = 64.
  EXPECT_DOUBLE_EQ(pftk_f(1.0), 64.0);
  EXPECT_NEAR(pftk_f(0.5), 1 + 0.5 + 2 * 0.25 + 4 * 0.125 + 8 * 0.0625 +
                               16 * 0.03125 + 32 * 0.015625,
              1e-12);
}

TEST(PftkQTest, ApproximationIs3OverW) {
  EXPECT_DOUBLE_EQ(pftk_q(0.01, 30.0, QFormula::kApprox3OverW), 0.1);
  EXPECT_DOUBLE_EQ(pftk_q(0.01, 2.0, QFormula::kApprox3OverW), 1.0);
  EXPECT_DOUBLE_EQ(pftk_q(0.01, 1.0, QFormula::kApprox3OverW), 1.0);
}

TEST(PftkQTest, FullFormInUnitRangeAndNearApproxForSmallP) {
  for (double w : {5.0, 10.0, 30.0, 100.0}) {
    for (double p : {0.001, 0.01, 0.05, 0.2}) {
      const double q = pftk_q(p, w, QFormula::kFullPftk);
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
  }
  // For small p the full Q converges to 3/w.
  EXPECT_NEAR(pftk_q(1e-4, 50.0, QFormula::kFullPftk), 3.0 / 50.0, 5e-3);
}

TEST(ExpectedWindowTest, MatchesClosedForm) {
  const double p = 0.01, b = 2.0;
  const double k = (2.0 + b) / (3.0 * b);
  const double expected = k + std::sqrt(8.0 * (1 - p) / (3.0 * b * p) + k * k);
  EXPECT_NEAR(pftk_expected_window(p, b), expected, 1e-12);
}

TEST(ExpectedWindowTest, ShrinksWithLoss) {
  EXPECT_GT(pftk_expected_window(0.001, 2), pftk_expected_window(0.01, 2));
  EXPECT_GT(pftk_expected_window(0.01, 2), pftk_expected_window(0.1, 2));
}

TEST(FirstLossRoundTest, MatchesEq1) {
  const double p = 0.01, b = 2.0;
  const double k = (2.0 + b) / 6.0;
  const double expected = k + std::sqrt(2.0 * b * (1 - p) / (3.0 * p) + k * k);
  EXPECT_NEAR(padhye_first_loss_round(p, b), expected, 1e-12);
}

TEST(FirstLossRoundTest, ZeroLossEffectivelyInfinite) {
  EXPECT_GT(padhye_first_loss_round(0.0, 2), 1e10);
}

TEST(PadhyeThroughputTest, EdgeCases) {
  PadhyeInputs in;
  in.path = path();
  in.p = 1.0;
  EXPECT_DOUBLE_EQ(padhye_throughput_pps(in), 0.0);
  in.p = 0.0;
  EXPECT_DOUBLE_EQ(padhye_throughput_pps(in), in.path.w_m / in.path.rtt_s);
}

TEST(PadhyeThroughputTest, MonotoneDecreasingInLoss) {
  PadhyeInputs in;
  in.path = path();
  double prev = 1e18;
  for (double p : {0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.3}) {
    in.p = p;
    const double tp = padhye_throughput_pps(in);
    EXPECT_LT(tp, prev);
    prev = tp;
  }
}

TEST(PadhyeThroughputTest, WindowLimitCaps) {
  PadhyeInputs in;
  in.p = 1e-5;  // nearly lossless: E[W] >> W_m
  in.path = path(0.1, 0.5, 2, 20);
  const double tp = padhye_throughput_pps(in);
  // Window-limited: close to W_m/RTT = 200, never above it.
  EXPECT_LE(tp, 20.0 / 0.1 + 1.0);
  EXPECT_GT(tp, 0.8 * 20.0 / 0.1);
}

TEST(PadhyeThroughputTest, ScalesInverselyWithRtt) {
  PadhyeInputs a, b;
  a.p = b.p = 0.01;
  a.path = path(0.05);
  b.path = path(0.2);
  EXPECT_GT(padhye_throughput_pps(a), 3.0 * padhye_throughput_pps(b));
}

TEST(PadhyeSimpleTest, NearFullModelInModerateRegime) {
  PadhyeInputs in;
  in.path = path();
  for (double p : {0.002, 0.01, 0.03}) {
    in.p = p;
    const double full = padhye_throughput_pps(in);
    const double simple = padhye_simple_pps(in);
    EXPECT_NEAR(simple / full, 1.0, 0.25);
  }
}

TEST(PadhyeSimpleTest, RespectsWindowCeiling) {
  PadhyeInputs in;
  in.p = 1e-6;
  in.path = path(0.1, 0.5, 2, 10);
  EXPECT_DOUBLE_EQ(padhye_simple_pps(in), 100.0);
}

// Published sanity point: the famous 1/(RTT*sqrt(2bp/3)) term dominates for
// tiny p; check the simple model tracks it.
TEST(PadhyeSimpleTest, SqrtPScalingForSmallP) {
  PadhyeInputs in;
  in.path = path(0.1, 0.5, 1, 1e9);
  in.p = 1e-4;
  const double tp1 = padhye_simple_pps(in);
  in.p = 4e-4;  // 4x the loss => ~half the throughput
  const double tp2 = padhye_simple_pps(in);
  EXPECT_NEAR(tp1 / tp2, 2.0, 0.2);
}

TEST(PadhyeDeathTest, RejectsBadPathParams) {
  PadhyeInputs in;
  in.p = 0.01;
  in.path = path();
  in.path.rtt_s = 0.0;
  EXPECT_DEATH(padhye_throughput_pps(in), "rtt");
}

class PadhyeGrid
    : public testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(PadhyeGrid, FiniteNonNegativeEverywhere) {
  const auto [p, rtt, b] = GetParam();
  PadhyeInputs in;
  in.p = p;
  in.path = path(rtt, 0.5, b, 200);
  const double tp = padhye_throughput_pps(in);
  EXPECT_TRUE(std::isfinite(tp));
  EXPECT_GE(tp, 0.0);
  const double tps = padhye_simple_pps(in);
  EXPECT_TRUE(std::isfinite(tps));
  EXPECT_GE(tps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PadhyeGrid,
    testing::Combine(testing::Values(1e-6, 1e-4, 0.001, 0.01, 0.1, 0.5, 0.9),
                     testing::Values(0.02, 0.1, 0.5),
                     testing::Values(1.0, 2.0, 3.0)));

}  // namespace
}  // namespace hsr::model
