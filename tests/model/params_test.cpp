#include "model/params.h"

#include <gtest/gtest.h>

namespace hsr::model {
namespace {

analysis::FlowAnalysis typical_analysis() {
  analysis::FlowAnalysis a;
  a.data_loss_rate = 0.012;
  a.first_tx_loss_rate = 0.009;
  a.loss_event_rate_all = 0.006;
  a.loss_event_rate_data = 0.004;
  a.ack_loss_rate = 0.006;
  a.recovery_retx_loss_rate = 0.33;
  a.ack_burst_loss_probability = 0.015;
  a.ack_burst_loss_episode = 0.008;
  a.mean_rtt = util::Duration::millis(150);
  a.mean_first_rto = util::Duration::millis(700);
  a.goodput_pps = 80.0;
  a.unique_segments = 8000;
  a.span = util::Duration::seconds(100);
  a.fast_retransmits = 20;
  analysis::TimeoutSequence ts;
  ts.recovered_observed = true;
  a.timeout_sequences.push_back(ts);
  a.loss_indications = 21;
  a.timeout_probability = 1.0 / 21.0;
  return a;
}

TEST(PathFromAnalysisTest, UsesMeasuredRttAndT) {
  const auto a = typical_analysis();
  EstimationOptions opt;
  opt.b = 2;
  opt.w_m = 128;
  const PathParams p = path_from_analysis(a, opt);
  EXPECT_DOUBLE_EQ(p.rtt_s, 0.150);
  EXPECT_DOUBLE_EQ(p.t0_s, 0.700);
  EXPECT_DOUBLE_EQ(p.b, 2.0);
  EXPECT_DOUBLE_EQ(p.w_m, 128.0);
}

TEST(PathFromAnalysisTest, FallbacksForFlowWithoutTimeouts) {
  analysis::FlowAnalysis a = typical_analysis();
  a.timeout_sequences.clear();
  EstimationOptions opt;
  const PathParams p = path_from_analysis(a, opt);
  // No timeouts: T falls back to max(2*RTT, floor).
  EXPECT_DOUBLE_EQ(p.t0_s, 0.300);
}

TEST(PathFromAnalysisTest, DegenerateRttUsesDefault) {
  analysis::FlowAnalysis a = typical_analysis();
  a.mean_rtt = util::Duration::zero();
  EstimationOptions opt;
  const PathParams p = path_from_analysis(a, opt);
  EXPECT_DOUBLE_EQ(p.rtt_s, opt.default_rtt_s);
}

TEST(LossSourceTest, EventRateIsDefaultAndSplitsModels) {
  const auto a = typical_analysis();
  EstimationOptions opt;
  const PadhyeInputs pin = padhye_inputs_from_analysis(a, opt);
  EXPECT_DOUBLE_EQ(pin.p, 0.006);  // all indications
  const EnhancedInputs ein = enhanced_inputs_from_analysis(a, opt);
  EXPECT_DOUBLE_EQ(ein.p_d, 0.004);  // data-loss indications only
}

TEST(LossSourceTest, AlternativeSources) {
  const auto a = typical_analysis();
  EstimationOptions opt;
  opt.loss_source = EstimationOptions::LossSource::kFirstTxRate;
  EXPECT_DOUBLE_EQ(padhye_inputs_from_analysis(a, opt).p, 0.009);
  opt.loss_source = EstimationOptions::LossSource::kAllTxRate;
  EXPECT_DOUBLE_EQ(padhye_inputs_from_analysis(a, opt).p, 0.012);
}

TEST(PaSourceTest, EpisodeIsDefault) {
  const auto a = typical_analysis();
  EstimationOptions opt;
  EXPECT_DOUBLE_EQ(enhanced_inputs_from_analysis(a, opt).P_a, 0.008);
  opt.pa_source = EstimationOptions::PaSource::kRoundMeasured;
  EXPECT_DOUBLE_EQ(enhanced_inputs_from_analysis(a, opt).P_a, 0.015);
  opt.pa_source = EstimationOptions::PaSource::kDerived;
  const EnhancedInputs derived = enhanced_inputs_from_analysis(a, opt);
  EXPECT_GE(derived.P_a, 0.0);
  EXPECT_LT(derived.P_a, 1.0);
}

TEST(QSourceTest, RecommendedConstantByDefault) {
  const auto a = typical_analysis();
  EstimationOptions opt;
  EXPECT_DOUBLE_EQ(enhanced_inputs_from_analysis(a, opt).q, opt.recommended_q);
  opt.use_measured_q = true;
  EXPECT_DOUBLE_EQ(enhanced_inputs_from_analysis(a, opt).q, 0.33);
}

TEST(QSourceTest, MeasuredFallsBackWithoutTimeouts) {
  analysis::FlowAnalysis a = typical_analysis();
  a.timeout_sequences.clear();
  EstimationOptions opt;
  opt.use_measured_q = true;
  EXPECT_DOUBLE_EQ(enhanced_inputs_from_analysis(a, opt).q, opt.recommended_q);
}

TEST(EvaluateFlowTest, DeviationsComputedAgainstTrace) {
  const auto a = typical_analysis();
  EstimationOptions opt;
  const FlowEvaluation ev = evaluate_flow(a, opt);
  EXPECT_DOUBLE_EQ(ev.trace_pps, 80.0);
  EXPECT_GT(ev.padhye_pps, 0.0);
  EXPECT_GT(ev.enhanced_pps, 0.0);
  EXPECT_NEAR(ev.d_padhye, std::abs(ev.padhye_pps - 80.0) / 80.0, 1e-12);
  EXPECT_NEAR(ev.d_enhanced, std::abs(ev.enhanced_pps - 80.0) / 80.0, 1e-12);
  // The enhanced model never predicts above the Padhye baseline.
  EXPECT_LE(ev.enhanced_pps, ev.padhye_pps * 1.02);
}

TEST(EvaluateFlowTest, ZeroGoodputSkipsDeviation) {
  analysis::FlowAnalysis a = typical_analysis();
  a.goodput_pps = 0.0;
  const FlowEvaluation ev = evaluate_flow(a, EstimationOptions{});
  EXPECT_DOUBLE_EQ(ev.d_padhye, 0.0);
  EXPECT_DOUBLE_EQ(ev.d_enhanced, 0.0);
}

TEST(EvaluateFlowTest, ZeroLossFlowFiniteEvaluation) {
  analysis::FlowAnalysis a;
  a.goodput_pps = 100.0;
  a.mean_rtt = util::Duration::millis(50);
  const FlowEvaluation ev = evaluate_flow(a, EstimationOptions{});
  EXPECT_TRUE(std::isfinite(ev.padhye_pps));
  EXPECT_TRUE(std::isfinite(ev.enhanced_pps));
}

}  // namespace
}  // namespace hsr::model
