#include "model/enhanced.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hsr::model {
namespace {

EnhancedInputs base_inputs() {
  EnhancedInputs in;
  in.p_d = 0.0075;  // the paper's lifetime data-loss rate
  in.P_a = 0.01;
  in.q = 0.3;
  in.path = PathParams{0.1, 0.5, 2.0, 1000.0};
  return in;
}

TEST(EnhancedModelTest, BreakdownMatchesEquations) {
  const EnhancedInputs in = base_inputs();
  const EnhancedBreakdown bd = enhanced_model(in);

  // Eq. 1.
  const double k = (2.0 + in.path.b) / 6.0;
  const double x_p =
      k + std::sqrt(2.0 * in.path.b * (1 - in.p_d) / (3.0 * in.p_d) + k * k);
  EXPECT_NEAR(bd.x_p, x_p, 1e-9);

  // Eq. 2.
  EXPECT_NEAR(bd.e_x, (1.0 - std::pow(1 - in.P_a, x_p + 1)) / in.P_a, 1e-9);

  // Corrected Eq. 4: E[W] = 2 E[X]/b - 2.
  EXPECT_NEAR(bd.e_w, 2.0 * bd.e_x / in.path.b - 2.0, 1e-9);

  // Eq. 6.
  EXPECT_NEAR(bd.e_y, bd.e_w / 2.0 * (3.0 * bd.e_x / 2.0 - 1.0), 1e-9);

  // Eq. 9 and 10.
  EXPECT_NEAR(bd.q_p, std::min(1.0, 3.0 / bd.e_w), 1e-12);
  EXPECT_NEAR(bd.q_timeout,
              1.0 - (1.0 - bd.q_p) * std::pow(1 - in.P_a, x_p), 1e-9);

  // Eq. 11-13.
  const double p = 1.0 - (1.0 - in.q) * (1.0 - in.P_a);
  EXPECT_NEAR(bd.p_consec, p, 1e-12);
  EXPECT_NEAR(bd.e_r, 1.0 / (1.0 - p), 1e-12);
  EXPECT_NEAR(bd.e_y_to, std::pow(1.0 - in.q, bd.e_r), 1e-12);
  EXPECT_NEAR(bd.e_a_to_s, in.path.t0_s * pftk_f(p) / (1.0 - p), 1e-9);

  // Eq. 15.
  EXPECT_FALSE(bd.window_limited);
  const double tp = (bd.e_y + bd.q_timeout * bd.e_y_to) /
                    (bd.e_x * in.path.rtt_s + bd.q_timeout * bd.e_a_to_s);
  EXPECT_NEAR(bd.throughput_pps, tp, 1e-9);
}

TEST(EnhancedModelTest, DegeneratesToNoBurstLimitAsPaVanishes) {
  // P_a -> 0: E[X] -> X_P + 1 (the L'Hopital limit stated in §IV-B).
  EnhancedInputs in = base_inputs();
  in.P_a = 0.0;
  const EnhancedBreakdown bd = enhanced_model(in);
  EXPECT_NEAR(bd.e_x, bd.x_p + 1.0, 1e-6);
  EXPECT_NEAR(bd.q_timeout, bd.q_p, 1e-9);
}

TEST(EnhancedModelTest, ContinuousInPaNearZero) {
  EnhancedInputs in = base_inputs();
  in.P_a = 1e-13;
  const double tiny = enhanced_throughput_pps(in);
  in.P_a = 0.0;
  const double zero = enhanced_throughput_pps(in);
  EXPECT_NEAR(tiny / zero, 1.0, 1e-6);
}

TEST(EnhancedModelTest, NearPadhyeWhenExtensionsVanish) {
  // With P_a = 0 and q = p_d the model should land near the PFTK value
  // (small constant-level differences remain by construction).
  EnhancedInputs in = base_inputs();
  in.P_a = 0.0;
  in.q = in.p_d;
  const double enhanced = enhanced_throughput_pps(in);
  PadhyeInputs pin;
  pin.p = in.p_d;
  pin.path = in.path;
  const double padhye = padhye_throughput_pps(pin);
  EXPECT_NEAR(enhanced / padhye, 1.0, 0.15);
}

TEST(EnhancedModelTest, MonotoneDecreasingInPa) {
  EnhancedInputs in = base_inputs();
  double prev = 1e18;
  for (double pa : {0.0, 0.005, 0.01, 0.05, 0.1, 0.3}) {
    in.P_a = pa;
    const double tp = enhanced_throughput_pps(in);
    EXPECT_LT(tp, prev);
    prev = tp;
  }
}

TEST(EnhancedModelTest, MonotoneDecreasingInQ) {
  EnhancedInputs in = base_inputs();
  double prev = 1e18;
  for (double q : {0.0, 0.1, 0.25, 0.4, 0.6, 0.9}) {
    in.q = q;
    const double tp = enhanced_throughput_pps(in);
    EXPECT_LT(tp, prev);
    prev = tp;
  }
}

TEST(EnhancedModelTest, MonotoneDecreasingInDataLoss) {
  EnhancedInputs in = base_inputs();
  double prev = 1e18;
  for (double pd : {0.001, 0.005, 0.01, 0.05, 0.1}) {
    in.p_d = pd;
    const double tp = enhanced_throughput_pps(in);
    EXPECT_LT(tp, prev);
    prev = tp;
  }
}

TEST(EnhancedModelTest, WindowLimitedBranchEngages) {
  EnhancedInputs in = base_inputs();
  in.p_d = 1e-4;        // huge unconstrained window
  in.path.w_m = 20.0;   // small advertised window
  const EnhancedBreakdown bd = enhanced_model(in);
  EXPECT_TRUE(bd.window_limited);
  EXPECT_NEAR(bd.e_u, in.path.b * in.path.w_m / 2.0, 1e-12);  // Eq. 16
  EXPECT_GT(bd.v_p, 1.0);
  // Throughput can never exceed the window ceiling.
  EXPECT_LE(bd.throughput_pps, in.path.w_m / in.path.rtt_s * 1.01);
}

TEST(EnhancedModelTest, WindowLimitedMatchesEq21SecondBranch) {
  EnhancedInputs in = base_inputs();
  in.p_d = 5e-4;
  in.path.w_m = 30.0;
  const EnhancedBreakdown bd = enhanced_model(in);
  ASSERT_TRUE(bd.window_limited);
  const double w_m = in.path.w_m, b = in.path.b;
  // Eq. 17.
  const double v_p = (1 - in.p_d) / (in.p_d * w_m) + 1.0 - 3.0 * b * w_m / 8.0;
  EXPECT_NEAR(bd.v_p, std::max(v_p, 1.0), 1e-9);
  // Eq. 18.
  EXPECT_NEAR(bd.e_v, (1.0 - std::pow(1 - in.P_a, bd.v_p)) / in.P_a, 1e-6);
  // Eq. 19-20 feed the reported E[X], E[Y].
  EXPECT_NEAR(bd.e_x, b * w_m / 2.0 + bd.e_v, 1e-9);
  EXPECT_NEAR(bd.e_y, 3.0 * b * w_m * w_m / 8.0 + w_m * (bd.e_v - 0.5), 1e-6);
}

TEST(EnhancedModelTest, BranchesAgreeNearTheBoundary) {
  // Continuity check: pick p_d such that E[W] crosses W_m; throughput on
  // both sides of the crossing should not jump wildly.
  EnhancedInputs in = base_inputs();
  in.path.w_m = 40.0;
  double prev_tp = -1.0;
  for (double pd = 0.0008; pd < 0.01; pd *= 1.15) {
    in.p_d = pd;
    const double tp = enhanced_throughput_pps(in);
    if (prev_tp > 0.0) {
      EXPECT_LT(std::abs(tp - prev_tp) / prev_tp, 0.35);
    }
    prev_tp = tp;
  }
}

TEST(EnhancedModelTest, AsPublishedVariantDiffersForBNot2) {
  EnhancedInputs in = base_inputs();
  in.path.b = 1.0;
  const double corrected = enhanced_throughput_pps(in, EnhancedVariant::kCorrected);
  const double published = enhanced_throughput_pps(in, EnhancedVariant::kAsPublished);
  EXPECT_NE(corrected, published);
  // At b = 2 the two E[W] forms coincide (b/2 == 2/b), so the variants agree.
  in.path.b = 2.0;
  EXPECT_NEAR(enhanced_throughput_pps(in, EnhancedVariant::kCorrected),
              enhanced_throughput_pps(in, EnhancedVariant::kAsPublished), 1e-9);
}

TEST(AckBurstProbabilityTest, PowerLaw) {
  // w/b ACKs per round; independence gives p_a^(w/b).
  EXPECT_NEAR(ack_burst_probability(0.1, 6.0, 2.0), std::pow(0.1, 3.0), 1e-15);
  EXPECT_NEAR(ack_burst_probability(0.5, 4.0, 1.0), std::pow(0.5, 4.0), 1e-15);
  // At least one ACK per round.
  EXPECT_NEAR(ack_burst_probability(0.3, 0.5, 2.0), 0.3, 1e-15);
  EXPECT_DOUBLE_EQ(ack_burst_probability(0.0, 10, 2), 0.0);
  EXPECT_DOUBLE_EQ(ack_burst_probability(1.0, 10, 2), 1.0);
}

TEST(SelfConsistentPaTest, ConvergesAndIsConsistent) {
  EnhancedInputs seed = base_inputs();
  const double p_a = 0.2;  // strong per-ACK loss so P_a is non-negligible
  const EnhancedInputs solved = solve_self_consistent_pa(p_a, seed);
  const EnhancedBreakdown bd = enhanced_model(solved);
  const double window = std::min(bd.window_limited ? seed.path.w_m : bd.e_w,
                                 seed.path.w_m);
  EXPECT_NEAR(solved.P_a, ack_burst_probability(p_a, window, seed.path.b), 1e-6);
}

TEST(DeviationRateTest, Eq22) {
  EXPECT_DOUBLE_EQ(deviation_rate(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(deviation_rate(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(deviation_rate(100.0, 100.0), 0.0);
}

TEST(DeviationRateDeathTest, RequiresPositiveTrace) {
  EXPECT_DEATH(deviation_rate(1.0, 0.0), "trace");
}

class EnhancedGrid
    : public testing::TestWithParam<std::tuple<double, double, double, double>> {};

TEST_P(EnhancedGrid, FiniteNonNegativeAndBelowWindowCeiling) {
  const auto [pd, pa, q, wm] = GetParam();
  EnhancedInputs in;
  in.p_d = pd;
  in.P_a = pa;
  in.q = q;
  in.path = PathParams{0.12, 0.6, 2.0, wm};
  const EnhancedBreakdown bd = enhanced_model(in);
  EXPECT_TRUE(std::isfinite(bd.throughput_pps));
  EXPECT_GE(bd.throughput_pps, 0.0);
  EXPECT_LE(bd.throughput_pps, wm / in.path.rtt_s * 1.05);
  EXPECT_GE(bd.q_timeout, 0.0);
  EXPECT_LE(bd.q_timeout, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnhancedGrid,
    testing::Combine(testing::Values(1e-5, 0.001, 0.0075, 0.05, 0.3),
                     testing::Values(0.0, 0.001, 0.02, 0.2, 0.8),
                     testing::Values(0.0, 0.25, 0.4, 0.9),
                     testing::Values(8.0, 64.0, 512.0)));

// The paper's qualitative claims, as model properties:
TEST(PaperClaimsTest, EnhancedAlwaysAtOrBelowPadhyeBaseline) {
  // Extra impairments (P_a, q > p_d) can only reduce predicted throughput.
  for (double pd : {0.002, 0.0075, 0.02}) {
    EnhancedInputs in = base_inputs();
    in.p_d = pd;
    in.q = 0.3;
    in.P_a = 0.01;
    PadhyeInputs pin;
    pin.p = pd;
    pin.path = in.path;
    EXPECT_LE(enhanced_throughput_pps(in), padhye_throughput_pps(pin) * 1.02);
  }
}

TEST(PaperClaimsTest, DelayedAckRaisesBurstProbability) {
  // §V-A: fewer ACKs per round (larger b) make ACK burst loss more likely.
  const double p_a = 0.05;
  const double w = 12.0;
  EXPECT_LT(ack_burst_probability(p_a, w, 1.0), ack_burst_probability(p_a, w, 2.0));
  EXPECT_LT(ack_burst_probability(p_a, w, 2.0), ack_burst_probability(p_a, w, 4.0));
}

TEST(PaperClaimsTest, ReducingQRecoversThroughput) {
  // §V-B: MPTCP's double retransmission reduces q; the model must reward it.
  EnhancedInputs in = base_inputs();
  in.q = 0.4;
  const double high_q = enhanced_throughput_pps(in);
  in.q = 0.1;
  const double low_q = enhanced_throughput_pps(in);
  EXPECT_GT(low_q, high_q);
}

}  // namespace
}  // namespace hsr::model
