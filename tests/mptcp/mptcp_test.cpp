#include "mptcp/mptcp.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/rng.h"

namespace hsr::mptcp {
namespace {

using util::Duration;
using util::TimePoint;

PathSetup clean_path(double rate_bps = 10e6) {
  PathSetup p;
  p.downlink.rate_bps = rate_bps;
  p.downlink.prop_delay = Duration::millis(20);
  p.downlink.queue_capacity = 200;
  p.uplink.rate_bps = rate_bps;
  p.uplink.prop_delay = Duration::millis(20);
  p.uplink.queue_capacity = 200;
  p.down_channel = std::make_unique<net::PerfectChannel>();
  p.up_channel = std::make_unique<net::PerfectChannel>();
  return p;
}

PathSetup blackout_path(double from_s, double to_s, double rate_bps = 10e6) {
  PathSetup p = clean_path(rate_bps);
  p.down_channel = std::make_unique<net::FunctionalChannel>(
      [from_s, to_s](const net::Packet&, TimePoint now) {
        return (now >= TimePoint::from_seconds(from_s) &&
                now < TimePoint::from_seconds(to_s))
                   ? 1.0
                   : 0.0;
      },
      [](const net::Packet&, TimePoint) { return Duration::zero(); },
      util::Rng(1));
  return p;
}

MptcpConfig duplex_config() {
  MptcpConfig cfg;
  cfg.mode = Mode::kDuplex;
  cfg.subflow_tcp.receiver_window = 64;
  return cfg;
}

TEST(MptcpTest, DuplexStripesDistinctMetaSegments) {
  sim::Simulator sim;
  std::vector<PathSetup> paths;
  paths.push_back(clean_path());
  paths.push_back(clean_path());
  MptcpConnection conn(sim, 10, duplex_config(), std::move(paths));
  conn.start();
  sim.run_until(TimePoint::from_seconds(10));

  // Both subflows carried data, and meta-goodput is about the sum.
  EXPECT_GT(conn.subflow_sender(0).stats().segments_sent, 1000u);
  EXPECT_GT(conn.subflow_sender(1).stats().segments_sent, 1000u);
  const std::uint64_t sum_unique = conn.subflow_receiver(0).stats().unique_segments +
                                   conn.subflow_receiver(1).stats().unique_segments;
  // Striping assigns each meta segment to exactly one subflow (no overlap).
  EXPECT_EQ(conn.unique_meta_delivered(), sum_unique);
}

TEST(MptcpTest, DuplexRoughlyDoublesCleanThroughput) {
  // Each path alone is capacity-limited at ~893 segments/s (10 Mb/s, 1400 B).
  sim::Simulator sim;
  std::vector<PathSetup> paths;
  paths.push_back(clean_path());
  paths.push_back(clean_path());
  MptcpConfig cfg = duplex_config();
  cfg.subflow_tcp.receiver_window = 128;
  MptcpConnection conn(sim, 10, cfg, std::move(paths));
  conn.start();
  sim.run_until(TimePoint::from_seconds(20));
  EXPECT_GT(conn.goodput_pps(), 1.6 * 893.0);
}

TEST(MptcpTest, BackupModeKeepsSecondaryIdle) {
  sim::Simulator sim;
  std::vector<PathSetup> paths;
  paths.push_back(clean_path());
  paths.push_back(clean_path());
  MptcpConfig cfg;
  cfg.mode = Mode::kBackup;
  cfg.subflow_tcp.receiver_window = 64;
  MptcpConnection conn(sim, 10, cfg, std::move(paths));
  conn.start();
  sim.run_until(TimePoint::from_seconds(10));
  EXPECT_GT(conn.subflow_sender(0).stats().segments_sent, 1000u);
  EXPECT_EQ(conn.subflow_sender(1).stats().segments_sent, 0u);
  EXPECT_EQ(conn.rescue_transmissions(), 0u);
}

TEST(MptcpTest, BackupRescuesTimedOutSegmentOnSecondSubflow) {
  sim::Simulator sim;
  std::vector<PathSetup> paths;
  paths.push_back(blackout_path(2.0, 6.0));  // primary dies for 4 s
  paths.push_back(clean_path());
  MptcpConfig cfg;
  cfg.mode = Mode::kBackup;
  cfg.subflow_tcp.receiver_window = 64;
  MptcpConnection conn(sim, 10, cfg, std::move(paths));
  conn.start();
  sim.run_until(TimePoint::from_seconds(12));

  EXPECT_GE(conn.subflow_sender(0).stats().timeouts, 1u);
  EXPECT_GE(conn.rescue_transmissions(), 1u);
  EXPECT_GE(conn.useful_rescues(), 1u);
  // The rescued meta segments reached the receiver via subflow 1.
  EXPECT_GT(conn.subflow_receiver(1).stats().unique_segments, 0u);
}

TEST(MptcpTest, RescueDeliversMetaSegmentLostOnPrimary) {
  // During the primary blackout the timed-out meta segment must still be
  // counted delivered (via the backup), shrinking the effective recovery
  // gap — the §V-B q-reduction mechanism.
  sim::Simulator sim;
  std::vector<PathSetup> paths;
  paths.push_back(blackout_path(2.0, 8.0));
  paths.push_back(clean_path());
  MptcpConfig cfg;
  cfg.mode = Mode::kBackup;
  cfg.subflow_tcp.receiver_window = 32;
  MptcpConnection conn(sim, 10, cfg, std::move(paths));
  conn.start();
  sim.run_until(TimePoint::from_seconds(7.0));  // still inside the blackout
  // Some rescue happened and was delivered while the primary is dark.
  EXPECT_GE(conn.useful_rescues(), 1u);
  EXPECT_GT(conn.subflow_receiver(1).stats().unique_segments, 0u);
}

TEST(MptcpTest, DuplexSurvivesOnePathBlackout) {
  sim::Simulator sim;
  std::vector<PathSetup> paths;
  paths.push_back(blackout_path(2.0, 18.0));
  paths.push_back(clean_path());
  MptcpConnection conn(sim, 10, duplex_config(), std::move(paths));
  conn.start();
  sim.run_until(TimePoint::from_seconds(20));
  // Path 1 carried the connection: goodput near one path's capacity.
  EXPECT_GT(conn.goodput_pps(), 0.6 * 893.0);
}

TEST(MptcpTest, MetaSequenceHasNoGapsUnderCleanPaths) {
  sim::Simulator sim;
  std::vector<PathSetup> paths;
  paths.push_back(clean_path());
  paths.push_back(clean_path());
  MptcpConnection conn(sim, 10, duplex_config(), std::move(paths));
  conn.start();
  sim.run_until(TimePoint::from_seconds(5));
  // With no loss, delivered meta segments must be the contiguous prefix
  // 1..N: meta count equals the max assigned meta minus pending window.
  const std::uint64_t delivered = conn.unique_meta_delivered();
  EXPECT_GT(delivered, 1000u);
}

TEST(MptcpDeathTest, RequiresTwoSubflows) {
  sim::Simulator sim;
  std::vector<PathSetup> paths;
  paths.push_back(clean_path());
  EXPECT_DEATH(MptcpConnection(sim, 10, duplex_config(), std::move(paths)),
               "two subflows");
}

}  // namespace
}  // namespace hsr::mptcp
