// StreamingCorpusWriter: spill-then-merge must produce a corpus that is
// byte-identical to direct in-order writing, for any shard count, with the
// spill scratch cleaned up afterwards.
#include "trace/corpus_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/trace_binary.h"
#include "trace/trace_io.h"

namespace hsr::trace {
namespace {

namespace fs = std::filesystem;

FlowCapture make_capture(std::uint64_t index) {
  FlowCapture cap;
  cap.flow = static_cast<net::FlowId>(index);
  for (std::uint64_t i = 0; i < 3 + index % 4; ++i) {
    Packet p;
    p.id = i + 1;
    p.flow = cap.flow;
    p.kind = net::PacketKind::kData;
    p.seq = i + 1;
    p.size_bytes = 1400;
    const TimePoint sent = TimePoint::from_ns(static_cast<std::int64_t>(1000 * (i + 1)));
    cap.data.on_send(p, sent);
    if (i % 3 != 2) {
      cap.data.on_deliver(p, sent, sent + util::Duration::millis(20));
    } else {
      cap.data.on_drop(p, sent, net::DropCause::queue_overflow());
    }
  }
  return cap;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

// The reference: header with the exact counts, frames in flow-index order.
std::string direct_corpus(const std::vector<FlowCapture>& caps) {
  std::ostringstream os;
  write_binary_trace_header(os, caps.size());
  for (const auto& cap : caps) write_flow_frame(os, cap);
  return os.str();
}

TEST(StreamingCorpusWriterTest, MergeIsByteIdenticalForAnyShardCount) {
  constexpr std::uint64_t kFlows = 13;
  std::vector<FlowCapture> caps;
  for (std::uint64_t i = 0; i < kFlows; ++i) caps.push_back(make_capture(i));
  const std::string want = direct_corpus(caps);

  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    StreamingCorpusWriter::Options options;
    options.corpus_path = "corpus_writer_test_merge.hsrb";
    options.shards = shards;
    StreamingCorpusWriter writer(options);
    ASSERT_TRUE(writer.open().is_ok());
    // Scatter flows over shards the way atomic index claiming does: any
    // assignment keeps per-shard indices strictly increasing.
    for (std::uint64_t i = 0; i < kFlows; ++i) {
      ASSERT_TRUE(writer.spill_flow(static_cast<unsigned>(i % shards), i, caps[i]).is_ok());
    }
    const auto merged = writer.merge();
    ASSERT_TRUE(merged.is_ok()) << merged.status().to_string();
    EXPECT_EQ(merged.value().flows, kFlows);
    EXPECT_EQ(merged.value().quarantines, 0u);

    const std::string got = read_file(options.corpus_path);
    EXPECT_EQ(got, want) << "shards=" << shards;
    EXPECT_EQ(merged.value().bytes, want.size());

    // Spill scratch is gone; only the corpus remains.
    EXPECT_FALSE(fs::exists(options.corpus_path + ".spill"));
    std::remove(options.corpus_path.c_str());
  }
}

TEST(StreamingCorpusWriterTest, QuarantineFramesLandInIndexOrder) {
  StreamingCorpusWriter::Options options;
  options.corpus_path = "corpus_writer_test_quarantine.hsrb";
  options.shards = 2;
  StreamingCorpusWriter writer(options);
  ASSERT_TRUE(writer.open().is_ok());

  const FlowCapture cap0 = make_capture(0);
  const FlowCapture cap2 = make_capture(2);
  QuarantineRecord rec;
  rec.flow_index = 1;
  rec.provider = "China Unicom";
  rec.campaign = "January 2015";
  rec.status_code = 8;
  rec.message = "watchdog";

  ASSERT_TRUE(writer.spill_flow(0, 0, cap0).is_ok());
  ASSERT_TRUE(writer.spill_quarantine(1, 1, rec).is_ok());
  ASSERT_TRUE(writer.spill_flow(0, 2, cap2).is_ok());
  const auto merged = writer.merge();
  ASSERT_TRUE(merged.is_ok()) << merged.status().to_string();
  EXPECT_EQ(merged.value().flows, 2u);
  EXPECT_EQ(merged.value().quarantines, 1u);

  std::ifstream f(options.corpus_path, std::ios::binary);
  const auto corpus = read_binary_corpus(f);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();
  EXPECT_EQ(corpus.value().declared_flow_count, 2u);
  ASSERT_EQ(corpus.value().flows.size(), 2u);
  EXPECT_EQ(corpus.value().flows[0].flow, 0u);
  EXPECT_EQ(corpus.value().flows[1].flow, 2u);
  ASSERT_EQ(corpus.value().quarantined.size(), 1u);
  EXPECT_EQ(corpus.value().quarantined[0].flow_index, 1u);
  EXPECT_EQ(corpus.value().quarantined[0].provider, "China Unicom");
  std::remove(options.corpus_path.c_str());
}

TEST(StreamingCorpusWriterTest, SpillCountersTrackWhatWasWritten) {
  StreamingCorpusWriter::Options options;
  options.corpus_path = "corpus_writer_test_counts.hsrb";
  options.shards = 1;
  StreamingCorpusWriter writer(options);
  ASSERT_TRUE(writer.open().is_ok());
  ASSERT_TRUE(writer.spill_flow(0, 0, make_capture(0)).is_ok());
  ASSERT_TRUE(writer.spill_flow(0, 1, make_capture(1)).is_ok());
  QuarantineRecord rec;
  rec.flow_index = 2;
  ASSERT_TRUE(writer.spill_quarantine(0, 2, rec).is_ok());
  EXPECT_EQ(writer.flows_spilled(), 2u);
  EXPECT_EQ(writer.quarantines_spilled(), 1u);
  EXPECT_GT(writer.bytes_spilled(), 0u);
  ASSERT_TRUE(writer.merge().is_ok());
  std::remove(options.corpus_path.c_str());
}

}  // namespace
}  // namespace hsr::trace
