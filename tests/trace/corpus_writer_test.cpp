// Chunked corpus writing: committed chunks merged in index order must be
// byte-identical to direct in-order writing for ANY chunk partition (merge
// re-stamps frame sequence numbers), sidecar frames must be surfaced to the
// merge hook and stripped from the corpus, and every failure mode must
// leave committed files exactly as they were.
#include "trace/corpus_writer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fault/io_fault.h"
#include "trace/trace_binary.h"
#include "util/fs.h"

namespace hsr::trace {
namespace {

FlowCapture make_capture(std::uint64_t index) {
  FlowCapture cap;
  cap.flow = static_cast<net::FlowId>(index);
  for (std::uint64_t i = 0; i < 3 + index % 4; ++i) {
    Packet p;
    p.id = i + 1;
    p.flow = cap.flow;
    p.kind = net::PacketKind::kData;
    p.seq = i + 1;
    p.size_bytes = 1400;
    const TimePoint sent = TimePoint::from_ns(static_cast<std::int64_t>(1000 * (i + 1)));
    cap.data.on_send(p, sent);
    if (i % 3 != 2) {
      cap.data.on_deliver(p, sent, sent + util::Duration::millis(20));
    } else {
      cap.data.on_drop(p, sent, net::DropCause::queue_overflow());
    }
  }
  return cap;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

// The reference a merge must reproduce: header with the exact flow count,
// frames in order, sequence numbers stamped with the corpus-wide ordinal.
std::string direct_corpus(const std::vector<FlowCapture>& caps) {
  std::ostringstream os;
  write_binary_trace_header(os, caps.size());
  std::uint64_t seq = 0;
  for (const auto& cap : caps) write_flow_frame(os, cap, seq++);
  return os.str();
}

util::Status keep_all_frames(char, const std::string&) { return util::Status(); }

TEST(ChunkFileWriterTest, MergeIsByteIdenticalForAnyChunkPartition) {
  constexpr std::uint64_t kFlows = 13;
  std::vector<FlowCapture> caps;
  for (std::uint64_t i = 0; i < kFlows; ++i) caps.push_back(make_capture(i));
  const std::string want = direct_corpus(caps);
  util::Fs& fs = util::Fs::real();

  for (const std::uint64_t chunk_flows : {1u, 3u, 5u, 13u}) {
    std::vector<std::string> chunk_paths;
    for (std::uint64_t first = 0; first < kFlows; first += chunk_flows) {
      ChunkFileWriter writer(
          fs, "corpus_writer_test_chunk_" + std::to_string(first) + ".hsrb");
      ASSERT_TRUE(writer.open().is_ok());
      for (std::uint64_t i = first; i < std::min(first + chunk_flows, kFlows); ++i) {
        ASSERT_TRUE(writer.append_flow(caps[i]).is_ok());
      }
      const auto info = writer.commit();
      ASSERT_TRUE(info.is_ok()) << info.status().to_string();
      chunk_paths.push_back(writer.path());
    }

    const std::string corpus_path = "corpus_writer_test_merge.hsrb";
    const auto merged =
        merge_corpus_chunks(fs, chunk_paths, corpus_path, kFlows, keep_all_frames);
    ASSERT_TRUE(merged.is_ok()) << merged.status().to_string();
    EXPECT_EQ(merged.value().flows, kFlows);
    EXPECT_EQ(merged.value().quarantines, 0u);

    const std::string got = read_file(corpus_path);
    EXPECT_EQ(got, want) << "chunk_flows=" << chunk_flows;
    EXPECT_EQ(merged.value().bytes, want.size());

    std::remove(corpus_path.c_str());
    for (const auto& p : chunk_paths) std::remove(p.c_str());
  }
}

TEST(ChunkFileWriterTest, CommitInfoMatchesTheCommittedFile) {
  util::Fs& fs = util::Fs::real();
  const std::string path = "corpus_writer_test_info.hsrb";
  ChunkFileWriter writer(fs, path);
  ASSERT_TRUE(writer.open().is_ok());
  ASSERT_TRUE(writer.append_flow(make_capture(0)).is_ok());
  ASSERT_TRUE(writer.append_flow(make_capture(1)).is_ok());
  QuarantineRecord rec;
  rec.flow_index = 2;
  rec.provider = "China Unicom";
  ASSERT_TRUE(writer.append_quarantine(rec).is_ok());
  const auto info = writer.commit();
  ASSERT_TRUE(info.is_ok()) << info.status().to_string();

  EXPECT_EQ(info.value().flows, 2u);
  EXPECT_EQ(info.value().quarantines, 1u);
  const auto size = fs.file_size(path);
  ASSERT_TRUE(size.is_ok());
  EXPECT_EQ(info.value().bytes, size.value());
  const auto crc = crc32c_of_file(path);
  ASSERT_TRUE(crc.is_ok());
  EXPECT_EQ(info.value().crc32c, crc.value());
  EXPECT_FALSE(fs.exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(ChunkFileWriterTest, SidecarFramesSurfaceToTheHookAndAreStripped) {
  util::Fs& fs = util::Fs::real();
  const std::string chunk_path = "corpus_writer_test_sidecar_chunk.hsrb";
  ChunkFileWriter writer(fs, chunk_path);
  ASSERT_TRUE(writer.open().is_ok());
  ASSERT_TRUE(writer.append_flow(make_capture(0)).is_ok());
  ASSERT_TRUE(writer.append_raw('S', "sample-0").is_ok());
  QuarantineRecord rec;
  rec.flow_index = 1;
  ASSERT_TRUE(writer.append_quarantine(rec).is_ok());
  ASSERT_TRUE(writer.append_raw('S', "sample-1").is_ok());
  ASSERT_TRUE(writer.commit().is_ok());

  const std::string corpus_path = "corpus_writer_test_sidecar.hsrb";
  std::vector<std::pair<char, std::string>> seen;
  const auto merged = merge_corpus_chunks(
      fs, {chunk_path}, corpus_path, 1,
      [&seen](char type, const std::string& payload) {
        seen.emplace_back(type, payload);
        return util::Status();
      });
  ASSERT_TRUE(merged.is_ok()) << merged.status().to_string();

  // The hook saw every frame in stream order, sidecars included.
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].first, 'F');
  EXPECT_EQ(seen[1].first, 'S');
  EXPECT_EQ(seen[1].second, "sample-0");
  EXPECT_EQ(seen[2].first, 'Q');
  EXPECT_EQ(seen[3].first, 'S');
  EXPECT_EQ(seen[3].second, "sample-1");

  // The corpus holds only the 'F' and 'Q' frames, seq-re-stamped.
  std::ifstream in(corpus_path, std::ios::binary);
  const auto corpus = read_binary_corpus(in);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();
  EXPECT_EQ(corpus.value().declared_flow_count, 1u);
  ASSERT_EQ(corpus.value().flows.size(), 1u);
  ASSERT_EQ(corpus.value().quarantined.size(), 1u);
  EXPECT_EQ(corpus.value().quarantined[0].flow_index, 1u);
  std::remove(chunk_path.c_str());
  std::remove(corpus_path.c_str());
}

TEST(ChunkFileWriterTest, AbandonRemovesTheTmpAndNeverTouchesTheFinalPath) {
  util::Fs& fs = util::Fs::real();
  const std::string path = "corpus_writer_test_abandon.hsrb";
  {
    ChunkFileWriter writer(fs, path);
    ASSERT_TRUE(writer.open().is_ok());
    ASSERT_TRUE(writer.append_flow(make_capture(0)).is_ok());
    EXPECT_TRUE(fs.exists(path + ".tmp"));
    writer.abandon();
  }
  EXPECT_FALSE(fs.exists(path + ".tmp"));
  EXPECT_FALSE(fs.exists(path));
}

TEST(ChunkFileWriterTest, FailedCommitLeavesNoFinalFile) {
  fault::IoFaultPlan plan;
  plan.fail_next(fault::IoOp::kRename, ".hsrb", "chunk-rename");
  fault::FaultInjectingFs fs(plan, util::Fs::real());

  const std::string path = "corpus_writer_test_failed_commit.hsrb";
  ChunkFileWriter writer(fs, path);
  ASSERT_TRUE(writer.open().is_ok());
  ASSERT_TRUE(writer.append_flow(make_capture(0)).is_ok());
  const auto info = writer.commit();
  ASSERT_FALSE(info.is_ok());
  writer.abandon();
  EXPECT_FALSE(util::Fs::real().exists(path));
  EXPECT_FALSE(util::Fs::real().exists(path + ".tmp"));
  EXPECT_EQ(fs.faults_triggered(), 1u);
}

TEST(ChunkFileWriterTest, MergeFailureLeavesTheDestinationUntouched) {
  util::Fs& real = util::Fs::real();
  const std::string chunk_path = "corpus_writer_test_mf_chunk.hsrb";
  {
    ChunkFileWriter writer(real, chunk_path);
    ASSERT_TRUE(writer.open().is_ok());
    ASSERT_TRUE(writer.append_flow(make_capture(0)).is_ok());
    ASSERT_TRUE(writer.commit().is_ok());
  }

  // A previous (good) corpus sits at the destination; the failed merge must
  // not damage it.
  const std::string corpus_path = "corpus_writer_test_mf.hsrb";
  const std::string previous = direct_corpus({make_capture(7)});
  ASSERT_TRUE(util::write_file_atomic(real, corpus_path, previous).is_ok());

  fault::IoFaultPlan plan;
  plan.torn_rename("corpus_writer_test_mf.hsrb", "merge-torn");
  fault::FaultInjectingFs faulty(plan, real);
  const auto merged =
      merge_corpus_chunks(faulty, {chunk_path}, corpus_path, 1, keep_all_frames);
  ASSERT_FALSE(merged.is_ok());
  EXPECT_EQ(read_file(corpus_path), previous);
  // The committed chunk is untouched too: a retry can redo just the merge.
  const auto chunk_crc = crc32c_of_file(chunk_path);
  ASSERT_TRUE(chunk_crc.is_ok());
  std::remove(chunk_path.c_str());
  std::remove(corpus_path.c_str());
  std::remove((corpus_path + ".tmp").c_str());
}

}  // namespace
}  // namespace hsr::trace
