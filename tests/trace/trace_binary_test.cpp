// hsrtrace-b2: the binary columnar reader must rebuild the exact
// FlowCapture the text writer serializes (lossless interconversion), keep
// everything before a torn final frame, refuse corruption with a frame
// index and a named reason (CRC / sequence / payload), skip unknown frame
// types, and still read legacy hsrtrace-b1 archives.
#include "trace/trace_binary.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "radio/profiles.h"
#include "trace/trace_io.h"
#include "workload/scenario.h"

namespace hsr::trace {
namespace {

FlowCapture sample_capture() {
  FlowCapture cap;
  cap.flow = 9;

  Packet d1;
  d1.id = 1;
  d1.flow = 9;
  d1.kind = net::PacketKind::kData;
  d1.seq = 1;
  d1.size_bytes = 1400;
  cap.data.on_send(d1, TimePoint::from_ns(1000));
  cap.data.on_deliver(d1, TimePoint::from_ns(1000), TimePoint::from_ns(31000));

  Packet d2 = d1;
  d2.id = 2;
  d2.seq = 2;
  d2.retx_count = 1;
  d2.is_retransmission = true;
  cap.data.on_send(d2, TimePoint::from_ns(2000));
  net::DropCause ge_bad = net::DropCause::gilbert_elliott(/*bad_state=*/true);
  ge_bad.prepend_component(1);
  cap.data.on_drop(d2, TimePoint::from_ns(2000), ge_bad);

  Packet d3 = d1;
  d3.id = 4;
  d3.seq = 3;
  cap.data.on_send(d3, TimePoint::from_ns(40000));  // still in flight

  Packet a1;
  a1.id = 3;
  a1.flow = 9;
  a1.kind = net::PacketKind::kAck;
  a1.ack_next = 2;
  a1.size_bytes = 52;
  cap.acks.on_send(a1, TimePoint::from_ns(35000));
  cap.acks.on_drop(a1, TimePoint::from_ns(35000), net::DropCause::queue_overflow());

  FaultRecord f;
  f.when = TimePoint::from_ns(2000);
  f.direction = 'D';
  f.packet_id = 2;
  f.seq = 2;
  f.kind = net::PacketKind::kData;
  f.directive = 0;
  f.action = 'X';
  f.delay = Duration::millis(250);
  f.label = "blackout";
  cap.faults.push_back(f);
  return cap;
}

std::string text_of(const FlowCapture& cap) {
  std::ostringstream os;
  write_flow_capture(os, cap);
  return os.str();
}

std::string binary_corpus_of(const FlowCapture& cap) {
  std::ostringstream os;
  write_binary_trace_header(os, 1);
  write_flow_frame(os, cap, /*seq=*/0);
  return os.str();
}

TEST(TraceBinaryTest, RoundTripIsLosslessAgainstTextSerialization) {
  const FlowCapture original = sample_capture();
  std::istringstream in(binary_corpus_of(original));
  const auto corpus = read_binary_corpus(in);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();
  ASSERT_EQ(corpus.value().flows.size(), 1u);
  EXPECT_FALSE(corpus.value().torn_tail);
  EXPECT_EQ(corpus.value().declared_flow_count, 1u);

  // The text serializations — which cover every field, derived counters
  // included — must agree byte for byte.
  EXPECT_EQ(text_of(corpus.value().flows[0]), text_of(original));
}

TEST(TraceBinaryTest, OrganicFlowRoundTripsLosslessly) {
  // A real simulated flow exercises the codec over realistic columns:
  // long monotone id runs, delta-unfriendly transit jitter, drop causes.
  workload::FlowRunConfig cfg;
  cfg.profile = radio::mobile_lte_highspeed();
  cfg.duration = util::Duration::seconds(5);
  cfg.seed = 20157;
  const auto run = workload::run_flow(cfg);
  ASSERT_TRUE(run.status.is_ok());

  std::istringstream in(binary_corpus_of(run.capture));
  const auto corpus = read_binary_corpus(in);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();
  ASSERT_EQ(corpus.value().flows.size(), 1u);
  EXPECT_EQ(text_of(corpus.value().flows[0]), text_of(run.capture));
}

TEST(TraceBinaryTest, TornFinalFrameIsDroppedEverythingBeforeKept) {
  const FlowCapture cap = sample_capture();
  std::ostringstream os;
  write_binary_trace_header(os, 2);
  write_flow_frame(os, cap, 0);
  write_flow_frame(os, cap, 1);
  const std::string full = os.str();

  // Cut anywhere inside the second frame: the first flow survives, the torn
  // tail is flagged, and the read still succeeds.
  std::ostringstream probe;
  write_binary_trace_header(probe, 2);
  write_flow_frame(probe, cap, 0);
  const std::size_t second_frame_begins = probe.str().size();
  for (const std::size_t cut :
       {second_frame_begins + 1, second_frame_begins + 5, full.size() - 3}) {
    std::istringstream in(full.substr(0, cut));
    const auto corpus = read_binary_corpus(in);
    ASSERT_TRUE(corpus.is_ok()) << "cut=" << cut << ": " << corpus.status().to_string();
    EXPECT_TRUE(corpus.value().torn_tail) << "cut=" << cut;
    ASSERT_EQ(corpus.value().flows.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(text_of(corpus.value().flows[0]), text_of(cap));
  }
}

TEST(TraceBinaryTest, CorruptCompleteFrameIsAnErrorNamingTheFrame) {
  const FlowCapture cap = sample_capture();
  std::string corpus_bytes = binary_corpus_of(cap);
  // Scribble over the middle of the (complete) frame payload: with per-frame
  // CRC-32C, a v2 read MUST fail — no bit flip can silently decode — and the
  // diagnostic names both the frame and the reason.
  corpus_bytes[corpus_bytes.size() / 2] ^= 0x5a;
  corpus_bytes[corpus_bytes.size() / 2 + 1] ^= 0xff;

  std::istringstream in(corpus_bytes);
  const auto corpus = read_binary_corpus(in);
  ASSERT_FALSE(corpus.is_ok());
  EXPECT_NE(corpus.status().message().find("frame 0"), std::string::npos)
      << corpus.status().to_string();
  EXPECT_NE(corpus.status().message().find("crc32c mismatch"), std::string::npos)
      << corpus.status().to_string();
}

TEST(TraceBinaryTest, EverySingleByteFlipIsDetected) {
  // Exhaustive single-byte corruption across the whole frame region (type,
  // crc field, seq, size, payload): the CRC covers everything after itself,
  // and a corrupted CRC field no longer matches the intact rest, so each
  // position must yield an error or a torn tail — never a silent success.
  const FlowCapture cap = sample_capture();
  const std::string clean = binary_corpus_of(cap);
  const std::size_t frames_begin = kBinaryTraceMagicSize + 8;
  for (std::size_t pos = frames_begin; pos < clean.size(); ++pos) {
    std::string bytes = clean;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x41);
    std::istringstream in(bytes);
    const auto corpus = read_binary_corpus(in);
    if (corpus.is_ok()) {
      // Allowed only when the flipped size field turned the frame into a
      // torn tail (claimed length now runs past EOF) — and then the flow
      // must have been dropped, not returned corrupted.
      EXPECT_TRUE(corpus.value().torn_tail) << "pos=" << pos;
      EXPECT_TRUE(corpus.value().flows.empty()) << "pos=" << pos;
    } else {
      EXPECT_NE(corpus.status().message().find("frame 0"), std::string::npos)
          << "pos=" << pos << ": " << corpus.status().to_string();
    }
  }
}

TEST(TraceBinaryTest, OutOfOrderSequenceNumberIsAnError) {
  // A frame whose stored seq does not match its position in the file is the
  // signature of a mis-spliced archive (e.g. frames copied without
  // re-stamping): named, not tolerated.
  const FlowCapture cap = sample_capture();
  std::ostringstream os;
  write_binary_trace_header(os, 2);
  write_flow_frame(os, cap, 0);
  write_flow_frame(os, cap, 7);  // should be seq 1
  std::istringstream in(os.str());
  const auto corpus = read_binary_corpus(in);
  ASSERT_FALSE(corpus.is_ok());
  EXPECT_NE(corpus.status().message().find("frame 1"), std::string::npos)
      << corpus.status().to_string();
  EXPECT_NE(corpus.status().message().find("sequence mismatch"), std::string::npos)
      << corpus.status().to_string();
}

TEST(TraceBinaryTest, LegacyB1ArchivesRemainReadable) {
  const FlowCapture cap = sample_capture();
  std::ostringstream os;
  write_binary_trace_header(os, 1, /*version=*/1);
  write_flow_frame(os, cap, /*seq=*/0, /*version=*/1);
  const std::string bytes = os.str();
  EXPECT_EQ(bytes.substr(0, kBinaryTraceMagicSize),
            std::string(kBinaryTraceMagicB1, kBinaryTraceMagicSize));

  std::istringstream in(bytes);
  BinaryTraceReader reader(in);
  ASSERT_TRUE(reader.open().is_ok());
  EXPECT_EQ(reader.version(), 1);
  FlowCapture flow;
  QuarantineRecord quarantine;
  const auto frame = reader.next(&flow, &quarantine);
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  ASSERT_EQ(frame.value(), BinaryTraceReader::Frame::kFlow);
  EXPECT_EQ(text_of(flow), text_of(cap));
}

TEST(TraceBinaryTest, BadMagicIsInvalidArgument) {
  std::istringstream in("hsrtrace-XX\n........");
  const auto corpus = read_binary_corpus(in);
  ASSERT_FALSE(corpus.is_ok());
}

TEST(TraceBinaryTest, UnknownFrameTypesAreSkipped) {
  const FlowCapture cap = sample_capture();
  std::ostringstream os;
  write_binary_trace_header(os, 1);
  // A future frame type this reader has never heard of — still CRC-framed,
  // so it is integrity-checked on the way past.
  std::string frame;
  encode_raw_frame('Z', "from-the-future", /*seq=*/0, frame);
  os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  write_flow_frame(os, cap, /*seq=*/1);

  std::istringstream in(os.str());
  const auto corpus = read_binary_corpus(in);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();
  ASSERT_EQ(corpus.value().flows.size(), 1u);
  EXPECT_FALSE(corpus.value().torn_tail);
}

TEST(TraceBinaryTest, QuarantineFramesRoundTrip) {
  QuarantineRecord rec;
  rec.flow_index = 42;
  rec.provider = "China Mobile";
  rec.campaign = "October 2015";
  rec.status_code = 8;
  rec.message = "event budget exhausted";
  rec.downlink_plan = "hsrfaultplan-v1 directives=0\n";
  rec.uplink_plan = "";

  std::ostringstream os;
  write_binary_trace_header(os, 0);
  write_quarantine_frame(os, rec, /*seq=*/0);
  std::istringstream in(os.str());
  const auto corpus = read_binary_corpus(in);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();
  EXPECT_TRUE(corpus.value().flows.empty());
  ASSERT_EQ(corpus.value().quarantined.size(), 1u);
  const QuarantineRecord& q = corpus.value().quarantined[0];
  EXPECT_EQ(q.flow_index, 42u);
  EXPECT_EQ(q.provider, "China Mobile");
  EXPECT_EQ(q.campaign, "October 2015");
  EXPECT_EQ(q.status_code, 8);
  EXPECT_EQ(q.message, "event budget exhausted");
  EXPECT_EQ(q.downlink_plan, "hsrfaultplan-v1 directives=0\n");
  EXPECT_TRUE(q.uplink_plan.empty());
}

TEST(TraceBinaryTest, LoadFlowCaptureAnyReadsBothFormats) {
  const FlowCapture cap = sample_capture();
  const std::string text_path = "trace_binary_test_any.txt";
  const std::string bin_path = "trace_binary_test_any.bin";
  ASSERT_TRUE(save_flow_capture(text_path, cap).is_ok());
  ASSERT_TRUE(save_flow_capture_binary(bin_path, cap).is_ok());

  const auto from_text = load_flow_capture_any(text_path);
  ASSERT_TRUE(from_text.is_ok()) << from_text.status().to_string();
  const auto from_bin = load_flow_capture_any(bin_path);
  ASSERT_TRUE(from_bin.is_ok()) << from_bin.status().to_string();
  EXPECT_EQ(text_of(from_text.value()), text_of(cap));
  EXPECT_EQ(text_of(from_bin.value()), text_of(cap));

  // nth selection: a text archive holds exactly one flow.
  EXPECT_FALSE(load_flow_capture_any(text_path, 1).is_ok());
  EXPECT_FALSE(load_flow_capture_any(bin_path, 1).is_ok());

  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(TraceBinaryTest, SniffDistinguishesFormatsAndRewinds) {
  const FlowCapture cap = sample_capture();
  std::istringstream bin(binary_corpus_of(cap));
  EXPECT_TRUE(sniff_binary_trace(bin));
  const auto corpus = read_binary_corpus(bin);  // stream must be rewound
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();

  std::istringstream text(text_of(cap));
  EXPECT_FALSE(sniff_binary_trace(text));
  const auto reread = read_flow_capture(text);
  ASSERT_TRUE(reread.is_ok()) << reread.status().to_string();
}

}  // namespace
}  // namespace hsr::trace
