#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hsr::trace {
namespace {

FlowCapture sample_capture() {
  FlowCapture cap;
  cap.flow = 9;

  Packet d1;
  d1.id = 1;
  d1.flow = 9;
  d1.kind = net::PacketKind::kData;
  d1.seq = 1;
  d1.size_bytes = 1400;
  cap.data.on_send(d1, TimePoint::from_ns(1000));
  cap.data.on_deliver(d1, TimePoint::from_ns(1000), TimePoint::from_ns(31000));

  Packet d2 = d1;
  d2.id = 2;
  d2.seq = 2;
  d2.retx_count = 1;
  d2.is_retransmission = true;
  cap.data.on_send(d2, TimePoint::from_ns(2000));
  cap.data.on_drop(d2, TimePoint::from_ns(2000), net::DropReason::kChannelLoss);

  Packet a1;
  a1.id = 3;
  a1.flow = 9;
  a1.kind = net::PacketKind::kAck;
  a1.ack_next = 2;
  a1.size_bytes = 52;
  cap.acks.on_send(a1, TimePoint::from_ns(35000));
  cap.acks.on_drop(a1, TimePoint::from_ns(35000), net::DropReason::kQueueOverflow);
  return cap;
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const FlowCapture original = sample_capture();
  std::stringstream ss;
  write_flow_capture(ss, original);

  auto loaded = read_flow_capture(ss);
  ASSERT_TRUE(loaded.is_ok());
  const FlowCapture& cap = loaded.value();

  EXPECT_EQ(cap.flow, 9u);
  ASSERT_EQ(cap.data.sent_count(), 2u);
  ASSERT_EQ(cap.acks.sent_count(), 1u);

  const auto& d = cap.data.transmissions();
  EXPECT_EQ(d[0].packet.seq, 1u);
  EXPECT_EQ(d[0].sent, TimePoint::from_ns(1000));
  ASSERT_TRUE(d[0].arrived.has_value());
  EXPECT_EQ(*d[0].arrived, TimePoint::from_ns(31000));
  EXPECT_EQ(d[0].packet.kind, net::PacketKind::kData);

  EXPECT_TRUE(d[1].lost());
  EXPECT_EQ(*d[1].drop_reason, net::DropReason::kChannelLoss);
  EXPECT_EQ(d[1].packet.retx_count, 1u);
  EXPECT_TRUE(d[1].packet.is_retransmission);

  const auto& a = cap.acks.transmissions();
  EXPECT_EQ(a[0].packet.ack_next, 2u);
  EXPECT_EQ(*a[0].drop_reason, net::DropReason::kQueueOverflow);
}

TEST(TraceIoTest, LostPacketsSerializeAsMinusOne) {
  std::stringstream ss;
  write_flow_capture(ss, sample_capture());
  const std::string text = ss.str();
  EXPECT_NE(text.find(" -1 "), std::string::npos);
  EXPECT_NE(text.find("hsrtrace-v1 flow=9"), std::string::npos);
}

TEST(TraceIoTest, RejectsBadHeader) {
  std::stringstream ss("not-a-trace flow=1\n");
  auto loaded = read_flow_capture(ss);
  EXPECT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, RejectsMalformedLine) {
  std::stringstream ss("hsrtrace-v1 flow=1\nD garbage\n");
  auto loaded = read_flow_capture(ss);
  EXPECT_FALSE(loaded.is_ok());
}

TEST(TraceIoTest, EmptyCaptureRoundTrips) {
  FlowCapture cap;
  cap.flow = 4;
  std::stringstream ss;
  write_flow_capture(ss, cap);
  auto loaded = read_flow_capture(ss);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().flow, 4u);
  EXPECT_EQ(loaded.value().data.sent_count(), 0u);
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/hsr_trace_test.txt";
  ASSERT_TRUE(save_flow_capture(path, sample_capture()).is_ok());
  auto loaded = load_flow_capture(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().data.sent_count(), 2u);
}

TEST(TraceIoTest, MissingFileIsNotFound) {
  auto loaded = load_flow_capture("/nonexistent/dir/trace.txt");
  EXPECT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace hsr::trace
