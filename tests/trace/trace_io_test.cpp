#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace hsr::trace {
namespace {

FlowCapture sample_capture() {
  FlowCapture cap;
  cap.flow = 9;

  Packet d1;
  d1.id = 1;
  d1.flow = 9;
  d1.kind = net::PacketKind::kData;
  d1.seq = 1;
  d1.size_bytes = 1400;
  cap.data.on_send(d1, TimePoint::from_ns(1000));
  cap.data.on_deliver(d1, TimePoint::from_ns(1000), TimePoint::from_ns(31000));

  Packet d2 = d1;
  d2.id = 2;
  d2.seq = 2;
  d2.retx_count = 1;
  d2.is_retransmission = true;
  cap.data.on_send(d2, TimePoint::from_ns(2000));
  net::DropCause ge_bad = net::DropCause::gilbert_elliott(/*bad_state=*/true);
  ge_bad.prepend_component(1);  // dropped by the second part of a composite channel
  cap.data.on_drop(d2, TimePoint::from_ns(2000), ge_bad);

  Packet a1;
  a1.id = 3;
  a1.flow = 9;
  a1.kind = net::PacketKind::kAck;
  a1.ack_next = 2;
  a1.size_bytes = 52;
  cap.acks.on_send(a1, TimePoint::from_ns(35000));
  cap.acks.on_drop(a1, TimePoint::from_ns(35000), net::DropCause::queue_overflow());
  return cap;
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const FlowCapture original = sample_capture();
  std::stringstream ss;
  write_flow_capture(ss, original);

  auto loaded = read_flow_capture(ss);
  ASSERT_TRUE(loaded.is_ok());
  const FlowCapture& cap = loaded.value();

  EXPECT_EQ(cap.flow, 9u);
  ASSERT_EQ(cap.data.sent_count(), 2u);
  ASSERT_EQ(cap.acks.sent_count(), 1u);

  const auto& d = cap.data.transmissions();
  EXPECT_EQ(d[0].packet.seq, 1u);
  EXPECT_EQ(d[0].sent, TimePoint::from_ns(1000));
  ASSERT_TRUE(d[0].arrived.has_value());
  EXPECT_EQ(*d[0].arrived, TimePoint::from_ns(31000));
  EXPECT_EQ(d[0].packet.kind, net::PacketKind::kData);

  EXPECT_TRUE(d[1].lost());
  ASSERT_TRUE(d[1].drop_cause.has_value());
  EXPECT_EQ(d[1].drop_cause->category, net::DropCategory::kGilbertElliottBad);
  EXPECT_EQ(d[1].drop_cause->component_path_string(), "1");
  EXPECT_EQ(d[1].drop_cause->innermost_component(), 1);
  EXPECT_EQ(d[1].drop_cause->directive, -1);
  EXPECT_EQ(d[1].packet.retx_count, 1u);
  EXPECT_TRUE(d[1].packet.is_retransmission);

  const auto& a = cap.acks.transmissions();
  EXPECT_EQ(a[0].packet.ack_next, 2u);
  EXPECT_EQ(*a[0].drop_cause, net::DropCause::queue_overflow());
}

TEST(TraceIoTest, LostPacketsSerializeAsMinusOne) {
  std::stringstream ss;
  write_flow_capture(ss, sample_capture());
  const std::string text = ss.str();
  EXPECT_NE(text.find(" -1 "), std::string::npos);
  EXPECT_NE(text.find("hsrtrace-v2 flow=9"), std::string::npos);
}

TEST(TraceIoTest, DropTokensCarryComponentAndDirective) {
  std::stringstream ss;
  write_flow_capture(ss, sample_capture());
  const std::string text = ss.str();
  // GE bad-state drop attributed to composite component 1.
  EXPECT_NE(text.find(" G@1 "), std::string::npos) << text;
  // Queue overflow carries no component/directive suffix.
  EXPECT_NE(text.find(" Q "), std::string::npos) << text;
}

TEST(TraceIoTest, NestedComponentPathRoundTripsDotted) {
  FlowCapture cap;
  cap.flow = 4;
  Packet p;
  p.id = 1;
  p.flow = 4;
  p.kind = net::PacketKind::kData;
  p.seq = 1;
  p.size_bytes = 1400;
  cap.data.on_send(p, TimePoint::from_ns(500));
  // Drop attributed through a depth-2 composite stack: outer index 1,
  // inner index 0 — serialized as the dotted path token "B@1.0".
  net::DropCause nested = net::DropCause::bernoulli();
  nested.prepend_component(0);
  nested.prepend_component(1);
  cap.data.on_drop(p, TimePoint::from_ns(500), nested);

  std::stringstream ss;
  write_flow_capture(ss, cap);
  EXPECT_NE(ss.str().find(" B@1.0 "), std::string::npos) << ss.str();

  auto loaded = read_flow_capture(ss);
  ASSERT_TRUE(loaded.is_ok());
  const auto& d = loaded.value().data.transmissions();
  ASSERT_EQ(d.size(), 1u);
  ASSERT_TRUE(d[0].drop_cause.has_value());
  EXPECT_EQ(*d[0].drop_cause, nested);
  EXPECT_EQ(d[0].drop_cause->component_path_string(), "1.0");
  EXPECT_EQ(d[0].drop_cause->innermost_component(), 0);
}

TEST(TraceIoTest, MalformedComponentPathsAreRejected) {
  // A dotted path must be all non-negative integers and fit the depth cap.
  const std::string header = "hsrtrace-v2 flow=4\n";
  for (const std::string token :
       {"B@", "B@1.", "B@.0", "B@1..0", "B@1.x", "B@-1.0",
        "B@1.2.3.4.5.6.7"}) {
    std::stringstream ss(header + "D 1 1 0 1400 500 -1 " + token + " 0\n");
    auto loaded = read_flow_capture(ss);
    EXPECT_FALSE(loaded.is_ok()) << token;
  }
}

TEST(TraceIoTest, ScriptedCauseRoundTripsDirectiveIndex) {
  FlowCapture cap;
  cap.flow = 2;
  Packet p;
  p.id = 1;
  p.flow = 2;
  p.kind = net::PacketKind::kData;
  p.seq = 7;
  p.size_bytes = 1400;
  cap.data.on_send(p, TimePoint::from_ns(500));
  cap.data.on_drop(p, TimePoint::from_ns(500), net::DropCause::scripted(4));

  std::stringstream ss;
  write_flow_capture(ss, cap);
  EXPECT_NE(ss.str().find(" X#4 "), std::string::npos) << ss.str();
  auto loaded = read_flow_capture(ss);
  ASSERT_TRUE(loaded.is_ok());
  const auto& tx = loaded.value().data.transmissions().at(0);
  ASSERT_TRUE(tx.drop_cause.has_value());
  EXPECT_EQ(*tx.drop_cause, net::DropCause::scripted(4));
  EXPECT_TRUE(tx.drop_cause->is_scripted());
}

TEST(TraceIoTest, V1ArchivesStillRead) {
  // A v1 archive only knew codes '-', 'Q' and 'C'; 'C' decodes into the
  // legacy unattributed-channel category rather than failing the read.
  std::stringstream ss(
      "hsrtrace-v1 flow=3\n"
      "D 1 1 0 1400 1000 -1 C 0\n"
      "A 2 0 2 52 2000 -1 Q 0\n");
  auto loaded = read_flow_capture(ss);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  const FlowCapture& cap = loaded.value();
  EXPECT_EQ(cap.flow, 3u);
  ASSERT_EQ(cap.data.sent_count(), 1u);
  EXPECT_EQ(cap.data.transmissions()[0].drop_cause->category,
            net::DropCategory::kChannelUnattributed);
  EXPECT_EQ(cap.acks.transmissions()[0].drop_cause->category,
            net::DropCategory::kQueueOverflow);
}

TEST(TraceIoTest, MalformedDropTokenIsAnError) {
  for (const char* token : {"Z", "B@", "B@-2", "X#", "X#x", "B@1extra"}) {
    std::stringstream ss("hsrtrace-v2 flow=1\nD 1 1 0 1400 1000 -1 " +
                         std::string(token) + " 0\nA 2 0 1 52 2000 3000 - 0\n");
    auto loaded = read_flow_capture(ss);
    ASSERT_FALSE(loaded.is_ok()) << "token accepted: " << token;
    EXPECT_NE(loaded.status().message().find("bad drop token"), std::string::npos)
        << loaded.status().message();
  }
}

TEST(TraceIoTest, RejectsBadHeader) {
  std::stringstream ss("not-a-trace flow=1\n");
  auto loaded = read_flow_capture(ss);
  EXPECT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, RejectsMalformedLine) {
  std::stringstream ss("hsrtrace-v1 flow=1\nD garbage\n");
  auto loaded = read_flow_capture(ss);
  EXPECT_FALSE(loaded.is_ok());
}

TEST(TraceIoTest, EmptyCaptureRoundTrips) {
  FlowCapture cap;
  cap.flow = 4;
  std::stringstream ss;
  write_flow_capture(ss, cap);
  auto loaded = read_flow_capture(ss);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().flow, 4u);
  EXPECT_EQ(loaded.value().data.sent_count(), 0u);
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/hsr_trace_test.txt";
  ASSERT_TRUE(save_flow_capture(path, sample_capture()).is_ok());
  auto loaded = load_flow_capture(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().data.sent_count(), 2u);
}

TEST(TraceIoTest, MissingFileIsNotFound) {
  auto loaded = load_flow_capture("/nonexistent/dir/trace.txt");
  EXPECT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

// --- Fault audit records ------------------------------------------------------

FlowCapture faulted_capture() {
  FlowCapture cap = sample_capture();
  FaultRecord f1;
  f1.when = TimePoint::from_ns(35000);
  f1.direction = 'A';
  f1.packet_id = 3;
  f1.seq = 2;
  f1.kind = net::PacketKind::kAck;
  f1.directive = 0;
  f1.action = 'X';
  f1.label = "ack-burst";
  cap.faults.push_back(f1);

  FaultRecord f2;
  f2.when = TimePoint::from_ns(40000);
  f2.direction = 'D';
  f2.packet_id = 1;
  f2.seq = 1;
  f2.kind = net::PacketKind::kData;
  f2.directive = 2;
  f2.action = 'L';
  f2.delay = Duration::millis(40);
  f2.label = "delay spike";  // whitespace must be sanitized on the wire
  cap.faults.push_back(f2);
  return cap;
}

TEST(TraceIoTest, FaultRecordsRoundTrip) {
  std::stringstream ss;
  write_flow_capture(ss, faulted_capture());
  auto loaded = read_flow_capture(ss);
  ASSERT_TRUE(loaded.is_ok());
  const auto& faults = loaded.value().faults;
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].direction, 'A');
  EXPECT_EQ(faults[0].action, 'X');
  EXPECT_EQ(faults[0].seq, 2u);
  EXPECT_EQ(faults[0].kind, net::PacketKind::kAck);
  EXPECT_EQ(faults[0].label, "ack-burst");
  EXPECT_EQ(faults[1].when, TimePoint::from_ns(40000));
  EXPECT_EQ(faults[1].delay, Duration::millis(40));
  EXPECT_EQ(faults[1].directive, 2u);
  EXPECT_EQ(faults[1].label, "delay_spike");  // sanitized, still one token
}

// --- Corruption diagnostics ---------------------------------------------------

TEST(TraceIoTest, BitFlippedFieldReportsLineAndToken) {
  std::stringstream ss;
  write_flow_capture(ss, sample_capture());
  std::string text = ss.str();
  // Corrupt the seq field of the second data record (line 3): "2" -> "2}".
  const auto pos = text.find("D 2 2");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "D 2 2}");

  std::stringstream corrupted(text);
  auto loaded = read_flow_capture(corrupted);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("'2}'"), std::string::npos)
      << loaded.status().message();
}

TEST(TraceIoTest, UnknownRecordTypeIsAnError) {
  std::stringstream ss("hsrtrace-v1 flow=1\nZ 1 2 3\n");
  auto loaded = read_flow_capture(ss);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.status().message().find("unknown record type"), std::string::npos);
}

TEST(TraceIoTest, WrongFieldCountNamesTheLine) {
  std::stringstream ss("hsrtrace-v1 flow=1\nD 1 2 3\n");
  auto loaded = read_flow_capture(ss);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("expected 9 fields"), std::string::npos);
}

// --- Truncation tolerance -----------------------------------------------------

TEST(TraceIoTest, TruncatedFinalLineIsTolerated) {
  std::stringstream ss;
  write_flow_capture(ss, sample_capture());
  std::string text = ss.str();
  // Chop the archive mid-record: drop the trailing newline plus a few bytes,
  // as if the writer was killed or the copy was torn.
  text.resize(text.size() - 5);

  std::stringstream truncated(text);
  auto loaded = read_flow_capture(truncated);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  // The torn record (the single ACK line) is dropped; the rest survives.
  EXPECT_EQ(loaded.value().data.sent_count(), 2u);
  EXPECT_EQ(loaded.value().acks.sent_count(), 0u);
}

TEST(TraceIoTest, CorruptLineBeforeEofStillFails) {
  // Same corruption NOT on the final line must still be an error: tolerance
  // is for torn tails only, not for silent mid-file damage.
  std::stringstream ss("hsrtrace-v1 flow=1\nD garbage\nA 3 0 2 52 35000 -1 Q 0\n");
  auto loaded = read_flow_capture(ss);
  EXPECT_FALSE(loaded.is_ok());
}

// --- Atomic save --------------------------------------------------------------

TEST(TraceIoTest, SaveLeavesNoTempFile) {
  const std::string path = testing::TempDir() + "/hsr_trace_atomic.txt";
  std::remove(path.c_str());
  ASSERT_TRUE(save_flow_capture(path, faulted_capture()).is_ok());
  // The temporary never survives a successful save.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  auto loaded = load_flow_capture(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().faults.size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceIoTest, SaveOverwritesExistingArchive) {
  const std::string path = testing::TempDir() + "/hsr_trace_overwrite.txt";
  ASSERT_TRUE(save_flow_capture(path, sample_capture()).is_ok());
  FlowCapture cap;
  cap.flow = 77;
  ASSERT_TRUE(save_flow_capture(path, cap).is_ok());
  auto loaded = load_flow_capture(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().flow, 77u);
  EXPECT_EQ(loaded.value().data.sent_count(), 0u);
  std::remove(path.c_str());
}

TEST(TraceIoTest, SaveToUnwritableDirectoryFailsCleanly) {
  auto status = save_flow_capture("/nonexistent/dir/trace.txt", sample_capture());
  EXPECT_FALSE(status.is_ok());
}

}  // namespace
}  // namespace hsr::trace
