#include "trace/capture.h"

#include <gtest/gtest.h>

namespace hsr::trace {
namespace {

Packet data(std::uint64_t id, SeqNo seq) {
  Packet p;
  p.id = id;
  p.kind = net::PacketKind::kData;
  p.seq = seq;
  p.size_bytes = 1400;
  return p;
}

Packet ack(std::uint64_t id, SeqNo ack_next) {
  Packet p;
  p.id = id;
  p.kind = net::PacketKind::kAck;
  p.ack_next = ack_next;
  p.size_bytes = 52;
  return p;
}

TEST(DirectionCaptureTest, RecordsFates) {
  DirectionCapture cap;
  cap.on_send(data(1, 1), TimePoint::from_ns(100));
  cap.on_deliver(data(1, 1), TimePoint::from_ns(100), TimePoint::from_ns(400));
  cap.on_send(data(2, 2), TimePoint::from_ns(200));
  cap.on_drop(data(2, 2), TimePoint::from_ns(200), DropCause::bernoulli());

  ASSERT_EQ(cap.sent_count(), 2u);
  EXPECT_EQ(cap.lost_count(), 1u);
  EXPECT_DOUBLE_EQ(cap.loss_rate(), 0.5);

  const auto& txs = cap.transmissions();
  EXPECT_FALSE(txs[0].lost());
  EXPECT_EQ(txs[0].transit(), util::Duration::nanos(300));
  EXPECT_TRUE(txs[1].lost());
  EXPECT_EQ(*txs[1].drop_cause, DropCause::bernoulli());
}

TEST(DirectionCaptureTest, MeanTransitOverDeliveredOnly) {
  DirectionCapture cap;
  cap.on_send(data(1, 1), TimePoint::from_ns(0));
  cap.on_deliver(data(1, 1), TimePoint::from_ns(0), TimePoint::from_ns(100));
  cap.on_send(data(2, 2), TimePoint::from_ns(0));
  cap.on_deliver(data(2, 2), TimePoint::from_ns(0), TimePoint::from_ns(300));
  cap.on_send(data(3, 3), TimePoint::from_ns(0));
  cap.on_drop(data(3, 3), TimePoint::from_ns(0), DropCause::queue_overflow());
  EXPECT_EQ(cap.mean_transit(), util::Duration::nanos(200));
}

TEST(DirectionCaptureTest, EmptyCaptureIsSafe) {
  DirectionCapture cap;
  EXPECT_EQ(cap.sent_count(), 0u);
  EXPECT_DOUBLE_EQ(cap.loss_rate(), 0.0);
  EXPECT_EQ(cap.mean_transit(), util::Duration::zero());
}

TEST(FlowCaptureTest, UniqueSegmentsCountsDistinctDeliveries) {
  FlowCapture cap;
  cap.data.on_send(data(1, 5), TimePoint::from_ns(0));
  cap.data.on_deliver(data(1, 5), TimePoint::from_ns(0), TimePoint::from_ns(10));
  cap.data.on_send(data(2, 5), TimePoint::from_ns(20));  // duplicate delivery
  cap.data.on_deliver(data(2, 5), TimePoint::from_ns(20), TimePoint::from_ns(30));
  cap.data.on_send(data(3, 6), TimePoint::from_ns(40));
  cap.data.on_drop(data(3, 6), TimePoint::from_ns(40), DropCause::bernoulli());
  EXPECT_EQ(cap.unique_segments_delivered(), 1u);
  EXPECT_EQ(cap.highest_delivered_seq(), 5u);
}

TEST(FlowCaptureTest, SpanCoversBothDirections) {
  FlowCapture cap;
  cap.data.on_send(data(1, 1), TimePoint::from_ns(100));
  cap.data.on_deliver(data(1, 1), TimePoint::from_ns(100), TimePoint::from_ns(250));
  cap.acks.on_send(ack(2, 2), TimePoint::from_ns(300));
  cap.acks.on_deliver(ack(2, 2), TimePoint::from_ns(300), TimePoint::from_ns(500));
  EXPECT_EQ(cap.span(), util::Duration::nanos(400));
}

TEST(FlowCaptureTest, EstimatedRttSumsDirections) {
  FlowCapture cap;
  cap.data.on_send(data(1, 1), TimePoint::from_ns(0));
  cap.data.on_deliver(data(1, 1), TimePoint::from_ns(0), TimePoint::from_ns(1000));
  cap.acks.on_send(ack(2, 2), TimePoint::from_ns(1000));
  cap.acks.on_deliver(ack(2, 2), TimePoint::from_ns(1000), TimePoint::from_ns(1500));
  EXPECT_EQ(cap.estimated_rtt(), util::Duration::nanos(1500));
}

TEST(FlowCaptureTest, EmptySpanIsZero) {
  FlowCapture cap;
  EXPECT_EQ(cap.span(), util::Duration::zero());
  EXPECT_EQ(cap.unique_segments_delivered(), 0u);
  EXPECT_EQ(cap.highest_delivered_seq(), 0u);
}

TEST(DirectionCaptureDeathTest, DropForUnseenPacketAborts) {
  DirectionCapture cap;
  EXPECT_DEATH(cap.on_drop(data(99, 1), TimePoint::zero(), DropCause::bernoulli()),
               "unseen");
}

}  // namespace
}  // namespace hsr::trace
