#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace hsr::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::zero());
}

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  TimePoint seen;
  sim.after(Duration::millis(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::zero() + Duration::millis(5));
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int ran = 0;
  sim.after(Duration::millis(1), [&] { ++ran; });
  sim.after(Duration::millis(10), [&] { ++ran; });
  const std::uint64_t n = sim.run_until(TimePoint::zero() + Duration::millis(5));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(ran, 1);
  // Clock lands exactly on the deadline even though no event was there.
  EXPECT_EQ(sim.now(), TimePoint::zero() + Duration::millis(5));
}

TEST(SimulatorTest, EventExactlyAtDeadlineRuns) {
  Simulator sim;
  bool ran = false;
  sim.after(Duration::millis(5), [&] { ran = true; });
  sim.run_until(TimePoint::zero() + Duration::millis(5));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StopExitsRunLoop) {
  Simulator sim;
  int ran = 0;
  sim.after(Duration::millis(1), [&] {
    ++ran;
    sim.stop();
  });
  sim.after(Duration::millis(2), [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
}

TEST(SimulatorTest, CascadedEventsRunSameRun) {
  Simulator sim;
  std::vector<int> order;
  sim.after(Duration::millis(1), [&] {
    order.push_back(1);
    sim.after(Duration::millis(1), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), TimePoint::zero() + Duration::millis(2));
}

TEST(SimulatorTest, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  TimePoint seen = TimePoint::max();
  sim.after(Duration::zero(), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::zero());
}

TEST(SimulatorDeathTest, SchedulingIntoThePastAborts) {
  Simulator sim;
  sim.after(Duration::millis(10), [&] {
    // now == 10ms; scheduling at 5ms must abort.
    sim.at(TimePoint::zero() + Duration::millis(5), [] {});
  });
  EXPECT_DEATH(sim.run(), "past");
}

TEST(SimulatorDeathTest, NegativeDelayAborts) {
  Simulator sim;
  EXPECT_DEATH(sim.after(Duration::millis(-1), [] {}), "negative");
}

TEST(SimulatorTest, DeterministicEventCountAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::uint64_t count = 0;
    std::function<void(int)> chain = [&](int depth) {
      ++count;
      if (depth < 50) {
        sim.after(Duration::micros(depth + 1), [&chain, depth] { chain(depth + 1); });
      }
    };
    sim.after(Duration::micros(1), [&chain] { chain(0); });
    sim.run();
    return count;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hsr::sim
