// Tests for the event-queue hot-path machinery: in-place reschedule
// (the RTO re-arm fast path) and tombstone compaction under cancel-heavy
// load. Accounting must balance throughout:
//   heap size + fired + pruned tombstones == scheduled_total.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace hsr::sim {
namespace {

void expect_balanced(const EventQueue& q) {
  EXPECT_EQ(q.heap_size() + q.fired_total() + q.pruned_tombstones_total(),
            q.scheduled_total());
}

TEST(EventQueueRescheduleTest, MovesEventToNewTime) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.schedule(TimePoint::from_ns(100), [&] { ++fired; });
  EXPECT_TRUE(q.reschedule(h, TimePoint::from_ns(250)));
  EXPECT_TRUE(h.pending());
  EXPECT_EQ(q.next_time(), TimePoint::from_ns(250));
  EXPECT_EQ(q.pop_and_run(), TimePoint::from_ns(250));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.reschedules_total(), 1u);
  expect_balanced(q);
}

TEST(EventQueueRescheduleTest, CanMoveEarlier) {
  EventQueue q;
  std::vector<int> order;
  EventHandle h = q.schedule(TimePoint::from_ns(500), [&] { order.push_back(1); });
  q.schedule(TimePoint::from_ns(300), [&] { order.push_back(2); });
  EXPECT_TRUE(q.reschedule(h, TimePoint::from_ns(100)));
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  expect_balanced(q);
}

TEST(EventQueueRescheduleTest, BehavesLikeCancelPlusSchedule) {
  // A moved event lands AFTER anything already scheduled for its new
  // instant — exactly the FIFO position a cancel + fresh schedule would get.
  EventQueue q;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_ns(50);
  EventHandle moved = q.schedule(TimePoint::from_ns(10), [&] { order.push_back(0); });
  q.schedule(t, [&] { order.push_back(1); });
  q.schedule(t, [&] { order.push_back(2); });
  EXPECT_TRUE(q.reschedule(moved, t));
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(EventQueueRescheduleTest, KeepsActionAndHandleValid) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.schedule(TimePoint::from_ns(10), [&] { ++fired; });
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(q.reschedule(h, TimePoint::from_ns(10 + 10 * i)));
    EXPECT_TRUE(h.pending());
  }
  EXPECT_EQ(q.pop_and_run(), TimePoint::from_ns(60));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(q.scheduled_total(), 6u);  // one schedule + five reschedules
  expect_balanced(q);
}

TEST(EventQueueRescheduleTest, RejectsCancelledFiredAndInertHandles) {
  EventQueue q;
  EventHandle cancelled = q.schedule(TimePoint::from_ns(10), [] {});
  EXPECT_TRUE(cancelled.cancel());
  EXPECT_FALSE(q.reschedule(cancelled, TimePoint::from_ns(20)));

  EventHandle fired = q.schedule(TimePoint::from_ns(10), [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.reschedule(fired, TimePoint::from_ns(20)));

  EventHandle inert;
  EXPECT_FALSE(q.reschedule(inert, TimePoint::from_ns(20)));
  expect_balanced(q);
}

TEST(EventQueueRescheduleTest, InertHandleNeverAliasesSlotZero) {
  // Regression test: a default-constructed handle carries slot 0 /
  // generation 0. reschedule() must not let it hijack whatever live event
  // happens to occupy slot 0 of this queue.
  EventQueue q;
  int victim_fired = 0;
  q.schedule(TimePoint::from_ns(10), [&] { ++victim_fired; });  // slot 0
  EventHandle inert;
  EXPECT_FALSE(q.reschedule(inert, TimePoint::from_ns(999)));
  EXPECT_FALSE(inert.pending());
  EXPECT_FALSE(inert.cancel());
  EXPECT_EQ(q.next_time(), TimePoint::from_ns(10));  // victim untouched
  q.pop_and_run();
  EXPECT_EQ(victim_fired, 1);
}

TEST(EventQueueRescheduleTest, ForeignQueueHandleIsRejected) {
  EventQueue a;
  EventQueue b;
  EventHandle ha = a.schedule(TimePoint::from_ns(10), [] {});
  b.schedule(TimePoint::from_ns(10), [] {});  // occupies b's slot 0
  EXPECT_FALSE(b.reschedule(ha, TimePoint::from_ns(999)));
  EXPECT_EQ(b.next_time(), TimePoint::from_ns(10));
  EXPECT_TRUE(ha.pending());
}

TEST(EventQueueCompactionTest, CancelHeavyLoadTriggersCompaction) {
  EventQueue q;
  int fired = 0;
  // One survivor far in the future keeps the queue non-empty.
  q.schedule(TimePoint::from_ns(1'000'000), [&] { ++fired; });
  // Schedule-and-cancel churn: every cancelled event becomes a tombstone
  // buried under the survivor; compaction must keep the heap bounded.
  std::size_t max_heap = 0;
  for (int i = 0; i < 10'000; ++i) {
    EventHandle h = q.schedule(TimePoint::from_ns(2'000'000 + i), [] {});
    EXPECT_TRUE(h.cancel());
    max_heap = std::max(max_heap, q.heap_size());
    // Tombstones never dominate a non-trivial heap for long.
    if (q.heap_size() >= 128) {
      EXPECT_LE(q.tombstones_in_heap() * 2, q.heap_size() + 1);
    }
  }
  EXPECT_GT(q.compactions_total(), 0u);
  EXPECT_LT(max_heap, 200u);  // without compaction this would reach ~10000
  EXPECT_EQ(q.pop_and_run(), TimePoint::from_ns(1'000'000));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pruned_tombstones_total(), 10'000u);
  expect_balanced(q);
}

TEST(EventQueueCompactionTest, CompactionPreservesOrderAndSurvivors) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  // Interleave survivors with victims so compaction has to filter a mixed
  // heap, then verify the survivors still fire in exact (time, FIFO) order.
  for (int i = 0; i < 200; ++i) {
    q.schedule(TimePoint::from_ns(10 * (i + 1)), [&order, i] { order.push_back(i); });
    doomed.push_back(q.schedule(TimePoint::from_ns(10 * (i + 1) + 5), [] {}));
    doomed.push_back(q.schedule(TimePoint::from_ns(10 * (i + 1) + 6), [] {}));
  }
  for (auto& h : doomed) EXPECT_TRUE(h.cancel());
  EXPECT_GT(q.compactions_total(), 0u);
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
  expect_balanced(q);
}

TEST(EventQueueCompactionTest, SmallHeapsNeverCompact) {
  EventQueue q;
  for (int i = 0; i < 20; ++i) {
    EventHandle h = q.schedule(TimePoint::from_ns(100 + i), [] {});
    h.cancel();
  }
  // Below the compaction floor, tombstones are cleaned by head pruning only.
  EXPECT_EQ(q.compactions_total(), 0u);
  EXPECT_TRUE(q.empty());  // prunes everything
  EXPECT_EQ(q.pruned_tombstones_total(), 20u);
  expect_balanced(q);
}

TEST(EventQueueCompactionTest, RescheduleChurnIsBounded) {
  // The RTO re-arm pattern: one timer moved thousands of times while other
  // traffic flows. Superseded entries are tombstones; the heap must not
  // grow linearly with the number of reschedules.
  EventQueue q;
  int fired = 0;
  EventHandle timer = q.schedule(TimePoint::from_ns(1'000), [&] { ++fired; });
  std::size_t max_heap = 0;
  for (int i = 1; i <= 5'000; ++i) {
    EXPECT_TRUE(q.reschedule(timer, TimePoint::from_ns(1'000 + i)));
    max_heap = std::max(max_heap, q.heap_size());
  }
  EXPECT_LT(max_heap, 200u);
  EXPECT_EQ(q.reschedules_total(), 5'000u);
  EXPECT_EQ(q.pop_and_run(), TimePoint::from_ns(6'000));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
  expect_balanced(q);
}

}  // namespace
}  // namespace hsr::sim
