#include "sim/timer.h"

#include <gtest/gtest.h>

namespace hsr::sim {
namespace {

TEST(TimerTest, FiresAtExpiry) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(Duration::millis(10));
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(t.expiry(), TimePoint::zero() + Duration::millis(10));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(TimerTest, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(Duration::millis(10));
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, RearmReplacesPrevious) {
  Simulator sim;
  std::vector<TimePoint> fires;
  Timer t(sim, [&] { fires.push_back(sim.now()); });
  t.arm(Duration::millis(10));
  t.arm(Duration::millis(20));  // replaces the 10ms arm
  sim.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], TimePoint::zero() + Duration::millis(20));
}

TEST(TimerTest, RearmFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] {
    if (++fired < 3) t.arm(Duration::millis(5));
  });
  t.arm(Duration::millis(5));
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), TimePoint::zero() + Duration::millis(15));
}

TEST(TimerTest, CancelIdleIsNoop) {
  Simulator sim;
  Timer t(sim, [] {});
  t.cancel();
  EXPECT_FALSE(t.armed());
}

TEST(TimerTest, DestructorCancels) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.arm(Duration::millis(1));
  }
  sim.run();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace hsr::sim
