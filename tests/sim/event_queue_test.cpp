#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace hsr::sim {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint::from_ns(30), [&] { order.push_back(3); });
  q.schedule(TimePoint::from_ns(10), [&] { order.push_back(1); });
  q.schedule(TimePoint::from_ns(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_ns(5);
  for (int i = 0; i < 10; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(TimePoint::from_ns(77), [] {});
  EXPECT_EQ(q.next_time(), TimePoint::from_ns(77));
  EXPECT_EQ(q.pop_and_run(), TimePoint::from_ns(77));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(TimePoint::from_ns(10), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.schedule(TimePoint::from_ns(10), [] {});
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventHandle h = q.schedule(TimePoint::from_ns(10), [] {});
  q.pop_and_run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, CancelMiddleEventKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint::from_ns(1), [&] { order.push_back(1); });
  EventHandle mid = q.schedule(TimePoint::from_ns(2), [&] { order.push_back(2); });
  q.schedule(TimePoint::from_ns(3), [&] { order.push_back(3); });
  mid.cancel();
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, ScheduleFromInsideCallback) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint::from_ns(1), [&] {
    order.push_back(1);
    q.schedule(TimePoint::from_ns(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, ScheduledTotalCounts) {
  EventQueue q;
  q.schedule(TimePoint::from_ns(1), [] {});
  q.schedule(TimePoint::from_ns(2), [] {});
  EXPECT_EQ(q.scheduled_total(), 2u);
}

TEST(EventQueueDeathTest, PopOnEmptyAborts) {
  EventQueue q;
  EXPECT_DEATH(q.pop_and_run(), "empty");
}

// --- Tombstone accounting ----------------------------------------------------

TEST(EventQueueTest, EmptyPrunesCancelledTombstones) {
  EventQueue q;
  std::vector<EventHandle> handles;
  handles.reserve(5);
  for (int i = 0; i < 5; ++i) {
    handles.push_back(q.schedule(TimePoint::from_ns(i + 1), [] {}));
  }
  for (auto& h : handles) EXPECT_TRUE(h.cancel());
  // empty() must see through the five tombstones and drop them.
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pruned_tombstones_total(), 5u);
  EXPECT_EQ(q.fired_total(), 0u);
  EXPECT_EQ(q.scheduled_total(), 5u);
}

TEST(EventQueueTest, NextTimePrunesCancelledHead) {
  EventQueue q;
  EventHandle head = q.schedule(TimePoint::from_ns(10), [] {});
  q.schedule(TimePoint::from_ns(20), [] {});
  head.cancel();
  EXPECT_EQ(q.next_time(), TimePoint::from_ns(20));
  EXPECT_EQ(q.pruned_tombstones_total(), 1u);
}

TEST(EventQueueTest, DoubleCancelCountsOneTombstone) {
  EventQueue q;
  EventHandle h = q.schedule(TimePoint::from_ns(10), [] {});
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel());  // second cancel is a no-op...
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pruned_tombstones_total(), 1u);  // ...and prunes exactly once
}

TEST(EventQueueTest, CancelAfterFireLeavesNoTombstone) {
  EventQueue q;
  EventHandle h = q.schedule(TimePoint::from_ns(10), [] {});
  q.pop_and_run();
  EXPECT_FALSE(h.cancel());  // already fired: nothing to cancel or prune
  EXPECT_EQ(q.fired_total(), 1u);
  EXPECT_EQ(q.pruned_tombstones_total(), 0u);
}

TEST(EventQueueTest, AccountingBalancesAfterMixedDrain) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.schedule(TimePoint::from_ns(i), [] {}));
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) handles[i].cancel();
  while (!q.empty()) q.pop_and_run();
  // Every scheduled event was either fired or pruned as a tombstone.
  EXPECT_EQ(q.fired_total() + q.pruned_tombstones_total(), q.scheduled_total());
  EXPECT_EQ(q.pruned_tombstones_total(), 34u);  // ceil(100 / 3)
}

}  // namespace
}  // namespace hsr::sim
