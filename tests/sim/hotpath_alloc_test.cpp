// Zero-allocation assertions for the simulation hot path. This TU installs
// the counting global operator new/delete (alloc_probe), so it lives in its
// own test binary: the replacement is binary-wide and must not leak into
// the other suites.
#define HSRTCP_ALLOC_PROBE_DEFINE_GLOBALS
#include "util/alloc_probe.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>

#include "net/link.h"
#include "net/packet.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "util/inline_function.h"
#include "workload/multi_flow.h"
#include "workload/scenario.h"

namespace hsr {
namespace {

using sim::EventAction;
using sim::EventQueue;
using util::AllocProbe;

TEST(AllocProbeTest, CountsNewAndDelete) {
  AllocProbe::Scope scope;
  auto* p = new int(1);
  EXPECT_EQ(scope.news_delta(), 1u);
  delete p;
  EXPECT_EQ(scope.deletes_delta(), 1u);
}

TEST(InlineFunctionAllocTest, InlineCaptureNeverAllocates) {
  int sink = 0;
  AllocProbe::Scope scope;
  {
    EventAction f = [&sink] { ++sink; };
    f();
    EventAction g = std::move(f);
    g();
  }
  EXPECT_EQ(scope.news_delta(), 0u);
  EXPECT_EQ(sink, 2);
}

TEST(InlineFunctionAllocTest, OversizedCaptureAllocatesExactlyOnce) {
  struct Big {
    std::byte blob[sim::kEventActionInlineBytes + 1] = {};
    void operator()() const {}
  };
  static_assert(!EventAction::holds_inline<Big>());
  AllocProbe::Scope scope;
  {
    EventAction f = Big{};
    f();
    EventAction g = std::move(f);  // heap target: pointer move, no allocation
    g();
  }
  EXPECT_EQ(scope.news_delta(), 1u);
  EXPECT_EQ(scope.deletes_delta(), 1u);
}

// The acceptance gate: once the queue's slab and heap have reached their
// high-water mark, a schedule→fire cycle with an inline-sized capture costs
// ZERO heap allocations.
TEST(EventQueueAllocTest, SteadyStateScheduleFireIsAllocationFree) {
  EventQueue q;
  std::uint64_t fired = 0;
  auto cycle = [&](int i) {
    q.schedule(util::TimePoint::from_ns(i), [&fired] { ++fired; });
    q.pop_and_run();
  };
  for (int i = 0; i < 64; ++i) cycle(i);  // warm-up: slab + heap growth
  AllocProbe::Scope scope;
  for (int i = 64; i < 4096; ++i) cycle(i);
  EXPECT_EQ(scope.news_delta(), 0u);
  EXPECT_EQ(fired, 4096u);
}

// Same gate for the re-arm path: after the first compaction establishes the
// heap's high-water capacity, reschedule() is allocation-free.
TEST(EventQueueAllocTest, SteadyStateRescheduleIsAllocationFree) {
  EventQueue q;
  sim::EventHandle timer = q.schedule(util::TimePoint::from_ns(1'000'000), [] {});
  for (int i = 1; i <= 256; ++i) {  // warm-up: tombstone growth + compaction
    ASSERT_TRUE(q.reschedule(timer, util::TimePoint::from_ns(1'000'000 + i)));
  }
  AllocProbe::Scope scope;
  for (int i = 257; i <= 4096; ++i) {
    ASSERT_TRUE(q.reschedule(timer, util::TimePoint::from_ns(1'000'000 + i)));
  }
  EXPECT_EQ(scope.news_delta(), 0u);
  EXPECT_GT(q.compactions_total(), 0u);
}

// Cancel churn (schedule + cancel under a long-lived survivor) settles into
// the same allocation-free steady state.
TEST(EventQueueAllocTest, SteadyStateCancelChurnIsAllocationFree) {
  EventQueue q;
  q.schedule(util::TimePoint::from_ns(1'000'000'000), [] {});
  auto churn = [&](int i) {
    sim::EventHandle h = q.schedule(util::TimePoint::from_ns(2'000'000 + i), [] {});
    h.cancel();
  };
  for (int i = 0; i < 512; ++i) churn(i);
  AllocProbe::Scope scope;
  for (int i = 512; i < 4096; ++i) churn(i);
  EXPECT_EQ(scope.news_delta(), 0u);
}

// Timer::arm rides the reschedule fast path; the ACK-clocked RTO re-arm
// must therefore be allocation-free too.
TEST(TimerAllocTest, SteadyStateReArmIsAllocationFree) {
  sim::Simulator sim;
  int fired = 0;
  sim::Timer t(sim, [&fired] { ++fired; });
  t.arm(util::Duration::millis(10));
  for (int i = 0; i < 256; ++i) t.arm(util::Duration::millis(10));
  AllocProbe::Scope scope;
  for (int i = 0; i < 4096; ++i) t.arm(util::Duration::millis(10));
  EXPECT_EQ(scope.news_delta(), 0u);
  t.cancel();
}

// End-to-end guard: a full TCP flow (links, channels, capture taps, RTO
// timers, segment ring, flat scoreboards) costs EXACTLY ZERO heap
// allocations per steady-state event. Setup (pre-sizing reserves, endpoint
// construction) allocates freely before t=0; the probe window starts after
// a warm-up tranche so one-time high-water growth (queue slab, tombstone
// heap) has settled, and then every event — ACK clocking, SACK scoreboard
// updates, retransmissions, RTO re-arms, capture records — must run out of
// pre-sized storage. A single node-based container or std::function on any
// endpoint path trips this at the first event that touches it.
TEST(FlowAllocTest, SteadyStateIsAllocationFree) {
  workload::FlowRunConfig cfg;
  cfg.profile = radio::mobile_lte_highspeed();
  cfg.duration = util::Duration::seconds(120);
  cfg.seed = 2015;
  cfg.probe_begin = util::TimePoint::zero() + util::Duration::seconds(10);
  cfg.probe_end = util::TimePoint::zero() + cfg.duration;
  const workload::FlowRunResult run = workload::run_flow(cfg);
  ASSERT_TRUE(run.status.is_ok());
  ASSERT_GT(run.steady_events, 10'000u);
  EXPECT_EQ(run.steady_allocs, 0u)
      << "allocs=" << run.steady_allocs << " events=" << run.steady_events;
}

// The shared-bottleneck delivery path: one Link, a FlowDemuxChannel of four
// per-flow channels, four registered endpoint Receivers. Once the queue and
// event slab reach their high-water mark, pushing packets of every flow
// through demux decide(), endpoint lookup, and endpoint delivery costs ZERO
// heap allocations — the per-flow registry is binary-searched, not hashed,
// and the endpoint closures fit the Receiver SBO.
TEST(MultiFlowAllocTest, FourFlowSteadyStateDeliveryIsAllocationFree) {
  sim::Simulator sim;
  net::LinkConfig cfg;
  cfg.rate_bps = 8e9;  // fast: no overflow, pure delivery churn
  cfg.queue_capacity = 64;
  auto demux = std::make_unique<net::FlowDemuxChannel>();
  for (net::FlowId flow = 1; flow <= 4; ++flow) {
    demux->add_flow(flow, std::make_unique<net::PerfectChannel>());
  }
  net::Link link(sim, cfg, std::move(demux));

  std::uint64_t delivered[4] = {};
  for (net::FlowId flow = 1; flow <= 4; ++flow) {
    auto endpoint = [count = &delivered[flow - 1]](const net::Packet&) {
      ++*count;
    };
    static_assert(net::Link::Receiver::holds_inline<decltype(endpoint)>(),
                  "endpoint closure outgrew the Receiver SBO");
    link.register_endpoint(flow, std::move(endpoint));
  }

  auto burst = [&] {
    for (net::FlowId flow = 1; flow <= 4; ++flow) {
      net::Packet p;
      p.id = net::allocate_packet_id();
      p.flow = flow;
      p.kind = net::PacketKind::kData;
      p.size_bytes = 1400;
      link.send(p);
    }
    sim.run();
  };
  for (int i = 0; i < 64; ++i) burst();  // warm-up: slab + queue growth
  AllocProbe::Scope scope;
  for (int i = 0; i < 1024; ++i) burst();
  EXPECT_EQ(scope.news_delta(), 0u);
  for (std::uint64_t count : delivered) EXPECT_EQ(count, 64u + 1024u);
}

// The full shared-bottleneck scenario at scale: 64 concurrent TCP senders
// through ONE bottleneck queue, each with its own capture, scoreboards,
// segment ring, and RTO timer. After a warm-up tranche, the whole fleet —
// demux, per-flow delivery, 64 interleaved ACK clocks, loss recovery under
// queue overflow — runs with ZERO heap allocations.
TEST(MultiFlowAllocTest, SixtyFourFlowSteadyStateIsAllocationFree) {
  workload::MultiFlowSpec spec;
  spec.profile = radio::telecom_3g_highspeed();
  spec.flows = 64;
  spec.duration = util::Duration::seconds(60);
  spec.seed = 2015;
  spec.probe_begin = util::TimePoint::zero() + util::Duration::seconds(5);
  spec.probe_end = util::TimePoint::zero() + spec.duration;
  const workload::MultiFlowResult result = workload::run_multi_flow(spec);
  ASSERT_TRUE(result.status.is_ok());
  ASSERT_EQ(result.flows.size(), 64u);
  ASSERT_GT(result.steady_events, 10'000u);
  EXPECT_EQ(result.steady_allocs, 0u)
      << "allocs=" << result.steady_allocs
      << " events=" << result.steady_events;
}

}  // namespace
}  // namespace hsr
