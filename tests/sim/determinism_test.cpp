// Seed-determinism regression tests: the same scenario run twice must be
// bit-identical (event counts, final clock, traffic counters). Guards the
// property every figure in the reproduction rests on.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/scenario.h"

namespace hsr::sim {
namespace {

struct ScenarioResult {
  std::uint64_t executed = 0;
  TimePoint final_clock;
};

// A stochastic event cascade: several actors reschedule themselves with
// Rng-forked exponential delays and keep replacing a far-future decoy event,
// so cancellation tombstones accumulate and prune under load.
ScenarioResult run_cascade(std::uint64_t seed) {
  Simulator sim;
  util::Rng root(seed);
  constexpr int kActors = 8;
  constexpr int kHops = 250;

  struct Actor {
    util::Rng rng;
    int hops;
    EventHandle decoy;
  };
  std::vector<Actor> actors;
  actors.reserve(kActors);
  for (int i = 0; i < kActors; ++i) {
    actors.push_back(Actor{root.fork("actor", static_cast<std::uint64_t>(i)), kHops, {}});
  }

  std::function<void(int)> step = [&](int i) {
    Actor& a = actors[static_cast<std::size_t>(i)];
    if (a.hops-- <= 0) return;
    a.decoy.cancel();
    a.decoy = sim.after(Duration::seconds(1000), [] {});
    sim.after(Duration::from_seconds(a.rng.exponential(0.010)), [&step, i] { step(i); });
  };
  for (int i = 0; i < kActors; ++i) step(i);

  ScenarioResult r;
  r.executed = sim.run();
  r.final_clock = sim.now();
  return r;
}

TEST(DeterminismTest, CascadeSameSeedSameTrajectory) {
  const ScenarioResult a = run_cascade(42);
  const ScenarioResult b = run_cascade(42);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.final_clock, b.final_clock);
}

TEST(DeterminismTest, CascadeDifferentSeedDiverges) {
  const ScenarioResult a = run_cascade(1);
  const ScenarioResult b = run_cascade(2);
  // Exponential delays from independent streams: agreement to the
  // nanosecond would mean the seed is being ignored somewhere.
  EXPECT_NE(a.final_clock, b.final_clock);
}

// Full-stack regression: an entire measured TCP flow (radio profile,
// channel losses, delayed ACKs, RTO machinery) replayed with the same seed
// must reproduce identical traffic counters and event logs.
TEST(DeterminismTest, FullFlowIsSeedReproducible) {
  workload::FlowRunConfig cfg;
  cfg.profile = radio::mobile_lte_highspeed();
  cfg.duration = Duration::seconds(20);
  cfg.seed = 7;

  const workload::FlowRunResult a = workload::run_flow(cfg);
  const workload::FlowRunResult b = workload::run_flow(cfg);

  EXPECT_EQ(a.sender_stats.segments_sent, b.sender_stats.segments_sent);
  EXPECT_EQ(a.sender_stats.retransmissions, b.sender_stats.retransmissions);
  EXPECT_EQ(a.sender_stats.timeouts, b.sender_stats.timeouts);
  EXPECT_EQ(a.sender_stats.acks_received, b.sender_stats.acks_received);
  EXPECT_EQ(a.receiver_stats.unique_segments, b.receiver_stats.unique_segments);
  EXPECT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size() && i < b.events.size(); ++i) {
    EXPECT_EQ(a.events[i].when, b.events[i].when) << "event " << i;
    EXPECT_EQ(a.events[i].type, b.events[i].type) << "event " << i;
  }
  EXPECT_EQ(a.goodput_pps, b.goodput_pps);
}

}  // namespace
}  // namespace hsr::sim
