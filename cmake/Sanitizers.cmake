# Sanitizer and hardening wiring for every target in the tree.
#
# Usage:
#   cmake -B build -S . -DHSRTCP_SANITIZE=address,undefined   # ASan + UBSan
#   cmake -B build -S . -DHSRTCP_SANITIZE=thread              # TSan
#   cmake -B build -S . -DHSRTCP_WERROR=ON                    # warnings are errors
#
# Include this module from the top-level CMakeLists.txt BEFORE any
# add_subdirectory() so the flags reach src/, tests/, bench/, and examples/
# alike. Sanitized builds also force-enable HSR_DCHECK (see
# src/util/logging.h) so the runtime invariant layer runs under the
# sanitizers regardless of build type.

set(HSRTCP_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers to enable: any of address, undefined, leak, thread (thread excludes the others)")
option(HSRTCP_WERROR "Treat compiler warnings as errors" OFF)
option(HSRTCP_FORCE_DCHECKS
       "Compile the HSR_DCHECK invariant layer in regardless of build type" OFF)

if(HSRTCP_FORCE_DCHECKS)
  add_compile_definitions(HSR_FORCE_DCHECKS=1)
  message(STATUS "hsrtcp: HSR_DCHECK invariants forced on")
endif()

if(HSRTCP_WERROR)
  add_compile_options(-Werror)
endif()

if(NOT HSRTCP_SANITIZE STREQUAL "")
  string(REPLACE "," ";" _hsr_san_list "${HSRTCP_SANITIZE}")

  set(_hsr_san_flags "")
  foreach(_san IN LISTS _hsr_san_list)
    string(STRIP "${_san}" _san)
    if(_san STREQUAL "address" OR _san STREQUAL "undefined" OR
       _san STREQUAL "leak" OR _san STREQUAL "thread")
      list(APPEND _hsr_san_flags "-fsanitize=${_san}")
    else()
      message(FATAL_ERROR "HSRTCP_SANITIZE: unknown sanitizer '${_san}' "
                          "(expected address, undefined, leak, or thread)")
    endif()
  endforeach()

  if("-fsanitize=thread" IN_LIST _hsr_san_flags AND
     ("-fsanitize=address" IN_LIST _hsr_san_flags OR
      "-fsanitize=leak" IN_LIST _hsr_san_flags))
    message(FATAL_ERROR "HSRTCP_SANITIZE: thread cannot be combined with address/leak")
  endif()

  add_compile_options(${_hsr_san_flags} -fno-omit-frame-pointer -fno-sanitize-recover=all)
  add_link_options(${_hsr_san_flags})

  # Sanitized runs exist to catch bugs: turn the debug-only invariant layer
  # on even in optimized build types.
  add_compile_definitions(HSR_FORCE_DCHECKS=1)

  message(STATUS "hsrtcp: sanitizers enabled: ${HSRTCP_SANITIZE}")
endif()
